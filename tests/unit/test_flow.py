"""Unit tests for the flow network, Dinic's max-flow, and the assignment helper."""

import pytest

from repro.flow.assignment import solve_cluster_assignment
from repro.flow.dinic import max_flow
from repro.flow.network import FlowNetwork
from repro.utils.errors import InvalidParameterError


class TestFlowNetwork:
    def test_add_edge_creates_nodes(self):
        network = FlowNetwork()
        network.add_edge("s", "t", 3)
        assert set(network.nodes) == {"s", "t"}

    def test_rejects_negative_capacity(self):
        with pytest.raises(InvalidParameterError):
            FlowNetwork().add_edge("a", "b", -1)

    def test_rejects_self_loop(self):
        with pytest.raises(InvalidParameterError):
            FlowNetwork().add_edge("a", "a", 1)

    def test_push_updates_reverse_edge(self):
        network = FlowNetwork()
        network.add_edge("a", "b", 5)
        edge = network.edges_from("a")[0]
        network.push(edge, 3)
        assert edge.flow == 3
        assert network.reverse_edge(edge).flow == -3
        assert edge.residual == 2

    def test_push_beyond_residual_raises(self):
        network = FlowNetwork()
        network.add_edge("a", "b", 2)
        edge = network.edges_from("a")[0]
        with pytest.raises(InvalidParameterError):
            network.push(edge, 3)


class TestMaxFlow:
    def test_single_edge(self):
        network = FlowNetwork()
        network.add_edge("s", "t", 7)
        assert max_flow(network, "s", "t") == 7

    def test_series_edges_bottleneck(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 10)
        network.add_edge("a", "t", 4)
        assert max_flow(network, "s", "t") == 4

    def test_parallel_paths(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 3)
        network.add_edge("a", "t", 3)
        network.add_edge("s", "b", 2)
        network.add_edge("b", "t", 2)
        assert max_flow(network, "s", "t") == 5

    def test_classic_diamond_with_cross_edge(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 10)
        network.add_edge("s", "b", 10)
        network.add_edge("a", "b", 1)
        network.add_edge("a", "t", 8)
        network.add_edge("b", "t", 10)
        assert max_flow(network, "s", "t") == 18

    def test_disconnected_sink(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 5)
        network.add_node("t")
        assert max_flow(network, "s", "t") == 0

    def test_same_source_and_sink_rejected(self):
        network = FlowNetwork()
        network.add_edge("s", "t", 1)
        with pytest.raises(InvalidParameterError):
            max_flow(network, "s", "s")

    def test_unknown_nodes_rejected(self):
        network = FlowNetwork()
        network.add_edge("s", "t", 1)
        with pytest.raises(InvalidParameterError):
            max_flow(network, "s", "x")

    def test_flow_conservation(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 4)
        network.add_edge("s", "b", 3)
        network.add_edge("a", "t", 2)
        network.add_edge("a", "b", 2)
        network.add_edge("b", "t", 5)
        value = max_flow(network, "s", "t")
        assert value == 7
        # Conservation at the interior nodes: inflow equals outflow.
        for node in ("a", "b"):
            assert network.flow_into(node) == network.flow_out_of(node)


class TestClusterAssignment:
    def test_perfect_assignment(self):
        quotas = {0: 1, 1: 1}
        cluster_groups = [{0}, {1}]
        value, assignment = solve_cluster_assignment(quotas, cluster_groups)
        assert value == 2
        assert assignment[0] == [0]
        assert assignment[1] == [1]

    def test_shared_cluster_forces_choice(self):
        quotas = {0: 1, 1: 1}
        cluster_groups = [{0, 1}]
        value, assignment = solve_cluster_assignment(quotas, cluster_groups)
        assert value == 1

    def test_infeasible_partial_assignment(self):
        quotas = {0: 2, 1: 1}
        cluster_groups = [{0}, {1}]
        value, _ = solve_cluster_assignment(quotas, cluster_groups)
        assert value == 2

    def test_multi_cluster_groups(self):
        quotas = {0: 2, 1: 2}
        cluster_groups = [{0}, {0, 1}, {1}, {1}]
        value, assignment = solve_cluster_assignment(quotas, cluster_groups)
        assert value == 4
        used = [c for clusters in assignment.values() for c in clusters]
        assert len(used) == len(set(used))

    def test_zero_quota_group_ignored(self):
        quotas = {0: 0, 1: 1}
        cluster_groups = [{0}, {1}]
        value, assignment = solve_cluster_assignment(quotas, cluster_groups)
        assert value == 1
        assert assignment[0] == []
