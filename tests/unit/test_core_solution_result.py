"""Unit tests for Solution, FairSolution, and RunResult."""

import numpy as np
import pytest

from repro.core.result import RunResult
from repro.core.solution import FairSolution, Solution, diversity_of
from repro.fairness.constraints import FairnessConstraint
from repro.metrics.vector import EuclideanMetric
from repro.data.element import Element
from repro.streaming.stats import StreamStats


def _elements(xs, groups=None):
    groups = groups or [0] * len(xs)
    return [
        Element(uid=i, vector=np.array([float(x), 0.0]), group=g)
        for i, (x, g) in enumerate(zip(xs, groups))
    ]


class TestDiversityOf:
    def test_minimum_pairwise_distance(self):
        elements = _elements([0.0, 1.0, 5.0])
        assert diversity_of(elements, EuclideanMetric()) == pytest.approx(1.0)

    def test_fewer_than_two_elements(self):
        assert diversity_of(_elements([3.0]), EuclideanMetric()) == float("inf")
        assert diversity_of([], EuclideanMetric()) == float("inf")


class TestSolution:
    def test_properties(self):
        elements = _elements([0.0, 2.0, 5.0])
        solution = Solution(elements, EuclideanMetric())
        assert solution.size == 3
        assert solution.diversity == pytest.approx(2.0)
        assert solution.uids == [0, 1, 2]
        assert len(solution) == 3
        assert list(solution) == elements

    def test_group_counts(self):
        solution = Solution(_elements([0, 1, 2], groups=[0, 1, 1]), EuclideanMetric())
        assert solution.group_counts() == {0: 1, 1: 2}

    def test_elements_returns_copy(self):
        solution = Solution(_elements([0.0, 1.0]), EuclideanMetric())
        solution.elements.append("junk")
        assert solution.size == 2


class TestFairSolution:
    def test_fair_solution_audit(self):
        constraint = FairnessConstraint({0: 1, 1: 1})
        solution = FairSolution(
            _elements([0.0, 3.0], groups=[0, 1]), EuclideanMetric(), constraint
        )
        assert solution.is_fair
        assert solution.audit.violation == 0
        assert solution.constraint == constraint

    def test_unfair_solution_detected(self):
        constraint = FairnessConstraint({0: 2, 1: 1})
        solution = FairSolution(
            _elements([0.0, 3.0], groups=[0, 1]), EuclideanMetric(), constraint
        )
        assert not solution.is_fair


class TestRunResult:
    def test_diversity_passthrough(self):
        solution = Solution(_elements([0.0, 4.0]), EuclideanMetric())
        result = RunResult(algorithm="X", solution=solution, stats=StreamStats())
        assert result.diversity == pytest.approx(4.0)
        assert result.succeeded

    def test_no_solution(self):
        result = RunResult(algorithm="X", solution=None, stats=StreamStats())
        assert result.diversity == 0.0
        assert not result.succeeded

    def test_summary_flattens_params_and_stats(self):
        solution = Solution(_elements([0.0, 4.0]), EuclideanMetric())
        stats = StreamStats(elements_processed=10, stream_seconds=0.5)
        result = RunResult(algorithm="X", solution=solution, stats=stats, params={"k": 2})
        summary = result.summary()
        assert summary["algorithm"] == "X"
        assert summary["param_k"] == 2
        assert summary["elements_processed"] == 10
        assert summary["solution_size"] == 2
