"""Unit tests for the window-policy abstraction."""

import pytest

from repro.utils.errors import InvalidParameterError
from repro.windowing import (
    LandmarkWindowPolicy,
    SlidingWindowPolicy,
    TumblingWindowPolicy,
    WindowPolicy,
    resolve_policy,
)


class TestSlidingPolicy:
    def test_live_start_tracks_suffix(self):
        policy = SlidingWindowPolicy(window=3)
        assert [policy.live_start(p) for p in range(6)] == [0, 0, 0, 1, 2, 3]

    def test_expires(self):
        assert SlidingWindowPolicy(window=3).expires is True

    def test_describe(self):
        assert SlidingWindowPolicy(window=5).describe() == {
            "policy": "sliding",
            "window": 5,
        }

    def test_invalid_window(self):
        with pytest.raises(InvalidParameterError):
            SlidingWindowPolicy(window=0)


class TestTumblingPolicy:
    def test_live_start_resets_per_bucket(self):
        policy = TumblingWindowPolicy(window=4)
        assert [policy.live_start(p) for p in range(9)] == [0, 0, 0, 0, 4, 4, 4, 4, 8]

    def test_describe(self):
        assert TumblingWindowPolicy(window=4).describe() == {
            "policy": "tumbling",
            "window": 4,
        }


class TestLandmarkPolicy:
    def test_live_start_is_the_landmark(self):
        policy = LandmarkWindowPolicy(landmark=7)
        assert [policy.live_start(p) for p in (0, 7, 100)] == [7, 7, 7]

    def test_never_expires(self):
        assert LandmarkWindowPolicy().expires is False

    def test_negative_landmark_rejected(self):
        with pytest.raises(InvalidParameterError, match="landmark"):
            LandmarkWindowPolicy(landmark=-1)

    def test_describe(self):
        assert LandmarkWindowPolicy(landmark=2).describe() == {
            "policy": "landmark",
            "landmark": 2,
        }


class TestResolvePolicy:
    def test_resolves_names(self):
        assert isinstance(resolve_policy("sliding", 4), SlidingWindowPolicy)
        assert isinstance(resolve_policy("tumbling", 4), TumblingWindowPolicy)
        assert isinstance(resolve_policy("landmark"), LandmarkWindowPolicy)

    def test_passes_instances_through(self):
        policy = SlidingWindowPolicy(window=2)
        assert resolve_policy(policy) is policy
        assert resolve_policy(policy, window=2) is policy

    def test_conflicting_window_with_instance_rejected(self):
        with pytest.raises(InvalidParameterError, match="conflicts"):
            resolve_policy(SlidingWindowPolicy(window=10), window=50)
        with pytest.raises(InvalidParameterError, match="conflicts"):
            resolve_policy(LandmarkWindowPolicy(), window=50)

    def test_landmark_window_becomes_landmark_position(self):
        assert resolve_policy("landmark", 9).landmark == 9

    def test_unknown_name_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown window policy"):
            resolve_policy("hopping", 4)

    def test_missing_window_rejected(self):
        with pytest.raises(InvalidParameterError):
            resolve_policy("sliding")

    def test_base_policy_is_abstract(self):
        with pytest.raises(NotImplementedError):
            WindowPolicy().live_start(0)
