"""Unit tests for DataStream."""

import numpy as np
import pytest

from repro.data.element import Element
from repro.streaming.stream import DataStream, stream_from_arrays
from repro.utils.errors import EmptyStreamError, InvalidParameterError


def _elements(count=10):
    return [Element(uid=i, vector=np.array([float(i)]), group=i % 2) for i in range(count)]


class TestDataStream:
    def test_len(self):
        assert len(DataStream(_elements(5))) == 5

    def test_empty_rejected(self):
        with pytest.raises(EmptyStreamError):
            DataStream([])

    def test_canonical_order_without_seed(self):
        stream = DataStream(_elements(5))
        assert [e.uid for e in stream] == [0, 1, 2, 3, 4]

    def test_shuffled_order_with_seed(self):
        stream = DataStream(_elements(20), shuffle_seed=3)
        order = [e.uid for e in stream]
        assert sorted(order) == list(range(20))
        assert order != list(range(20))

    def test_shuffle_is_reproducible(self):
        elements = _elements(20)
        first = [e.uid for e in DataStream(elements, shuffle_seed=9)]
        second = [e.uid for e in DataStream(elements, shuffle_seed=9)]
        assert first == second

    def test_multiple_iterations_allowed(self):
        stream = DataStream(_elements(5), shuffle_seed=1)
        assert [e.uid for e in stream] == [e.uid for e in stream]

    def test_permuted_view(self):
        stream = DataStream(_elements(20), shuffle_seed=1)
        other = stream.permuted(2)
        assert [e.uid for e in stream] != [e.uid for e in other]
        assert sorted(e.uid for e in other) == list(range(20))

    def test_take(self):
        stream = DataStream(_elements(10)).take(3)
        assert len(stream) == 3

    def test_take_rejects_non_positive(self):
        with pytest.raises(InvalidParameterError):
            DataStream(_elements(3)).take(0)

    def test_groups_and_sizes(self):
        stream = DataStream(_elements(10))
        assert stream.groups() == [0, 1]
        assert stream.group_sizes() == {0: 5, 1: 5}

    def test_filter(self):
        stream = DataStream(_elements(10)).filter(lambda e: e.group == 0)
        assert all(e.group == 0 for e in stream)

    def test_filter_to_empty_raises(self):
        with pytest.raises(EmptyStreamError):
            DataStream(_elements(4)).filter(lambda e: e.group == 99)


class TestStreamFromArrays:
    def test_builds_elements(self):
        features = np.arange(6, dtype=float).reshape(3, 2)
        stream = stream_from_arrays(features, groups=[0, 1, 0], name="toy")
        assert len(stream) == 3
        assert stream.groups() == [0, 1]

    def test_rejects_1d_features(self):
        with pytest.raises(InvalidParameterError):
            stream_from_arrays(np.arange(4, dtype=float), groups=[0, 1, 0, 1])

    def test_rejects_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            stream_from_arrays(np.zeros((3, 2)), groups=[0, 1])
