"""Unit tests for the augmentation graph and Cunningham's matroid intersection."""

import numpy as np
import pytest

from repro.fairness.constraints import FairnessConstraint
from repro.matroids.cluster import ClusterMatroid
from repro.matroids.intersection import (
    AugmentationGraph,
    greedy_common_independent,
    intersection_upper_bound,
    is_common_independent,
    matroid_intersection,
)
from repro.matroids.partition import PartitionMatroid, matroid_from_constraint
from repro.matroids.uniform import UniformMatroid
from repro.data.element import Element
from repro.utils.errors import InvalidParameterError


def _elements(groups):
    return [Element(uid=i, vector=np.array([float(i)]), group=g) for i, g in enumerate(groups)]


def _partition(ground, period, capacities):
    return PartitionMatroid(ground, block_of=lambda x: x % period, capacities=capacities)


class TestAugmentationGraph:
    def test_rejects_mismatched_ground_sets(self):
        with pytest.raises(InvalidParameterError):
            AugmentationGraph(UniformMatroid(range(3), 2), UniformMatroid(range(4), 2), set())

    def test_rejects_dependent_start(self):
        m = UniformMatroid(range(5), 1)
        with pytest.raises(InvalidParameterError):
            AugmentationGraph(m, m, {0, 1})

    def test_empty_set_has_direct_paths(self):
        m1 = UniformMatroid(range(3), 2)
        m2 = UniformMatroid(range(3), 2)
        graph = AugmentationGraph(m1, m2, set())
        path = graph.shortest_augmenting_path()
        assert path is not None
        assert len(path) == 1  # a -> x -> b

    def test_no_path_when_maximum(self):
        m1 = UniformMatroid(range(3), 1)
        m2 = UniformMatroid(range(3), 3)
        graph = AugmentationGraph(m1, m2, {0})
        assert graph.shortest_augmenting_path() is None


class TestGreedyCommonIndependent:
    def test_grows_until_blocked(self):
        m1 = UniformMatroid(range(6), 3)
        m2 = UniformMatroid(range(6), 4)
        result = greedy_common_independent(m1, m2)
        assert len(result) == 3
        assert is_common_independent(m1, m2, result)

    def test_priority_controls_selection_order(self):
        m1 = UniformMatroid(range(5), 1)
        m2 = UniformMatroid(range(5), 1)
        result = greedy_common_independent(m1, m2, priority=lambda x, s: float(x))
        assert result == {4}

    def test_rejects_dependent_initial(self):
        m = UniformMatroid(range(4), 1)
        with pytest.raises(InvalidParameterError):
            greedy_common_independent(m, m, initial={0, 1})

    def test_respects_initial(self):
        m1 = UniformMatroid(range(4), 2)
        m2 = UniformMatroid(range(4), 2)
        result = greedy_common_independent(m1, m2, initial={3})
        assert 3 in result
        assert len(result) == 2


class TestMatroidIntersection:
    def test_two_uniform_matroids(self):
        m1 = UniformMatroid(range(10), 4)
        m2 = UniformMatroid(range(10), 6)
        result = matroid_intersection(m1, m2)
        assert len(result) == 4

    def test_partition_vs_uniform(self):
        m1 = _partition(range(10), 2, {0: 2, 1: 2})
        m2 = UniformMatroid(range(10), 3)
        result = matroid_intersection(m1, m2)
        assert len(result) == 3
        assert is_common_independent(m1, m2, result)

    def test_needs_augmenting_paths(self):
        """A case where pure greedy from a bad start is stuck below optimum.

        Ground set {0, 1, 2}; M1 allows at most one of {0, 1} and one of {2};
        M2 allows at most one of {0, 2} and one of {1}.  Starting from {0}
        nothing can be added greedily (1 conflicts in M1... actually in M2;
        2 conflicts in M2... actually in M1), but the optimum {1, 2} has
        size two, so the algorithm must augment along a path that removes 0.
        """
        m1 = PartitionMatroid(range(3), block_of=lambda x: 0 if x in (0, 1) else 1, capacities={0: 1, 1: 1})
        m2 = PartitionMatroid(range(3), block_of=lambda x: 0 if x in (0, 2) else 1, capacities={0: 1, 1: 1})
        result = matroid_intersection(m1, m2, initial={0})
        assert len(result) == 2
        assert is_common_independent(m1, m2, result)

    def test_reaches_upper_bound_on_transversal_instance(self):
        elements = _elements([0, 0, 1, 1, 2, 2])
        constraint = FairnessConstraint({0: 1, 1: 1, 2: 1})
        fairness = matroid_from_constraint(elements, constraint)
        clusters = ClusterMatroid([[elements[0], elements[2]], [elements[1]], [elements[3]],
                                   [elements[4]], [elements[5]]])
        result = matroid_intersection(fairness, clusters)
        assert len(result) == min(intersection_upper_bound(fairness, clusters), 3)
        assert is_common_independent(fairness, clusters, result)

    def test_target_size_stops_early(self):
        m1 = UniformMatroid(range(10), 8)
        m2 = UniformMatroid(range(10), 8)
        result = matroid_intersection(m1, m2, target_size=3)
        assert len(result) == 3

    def test_empty_ground_set_edge_case(self):
        m1 = UniformMatroid([], 2)
        m2 = UniformMatroid([], 2)
        assert matroid_intersection(m1, m2) == set()

    def test_result_never_exceeds_upper_bound(self):
        m1 = _partition(range(12), 3, {0: 2, 1: 1, 2: 1})
        m2 = _partition(range(12), 4, {0: 1, 1: 1, 2: 1, 3: 1})
        result = matroid_intersection(m1, m2)
        assert len(result) <= intersection_upper_bound(m1, m2)
        assert is_common_independent(m1, m2, result)
