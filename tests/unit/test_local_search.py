"""Unit tests for the swap-based local-search post-optimizer."""

import numpy as np
import pytest

from repro.core.local_search import local_search_improve
from repro.core.solution import diversity_of
from repro.fairness.constraints import FairnessConstraint
from repro.metrics.vector import EuclideanMetric
from repro.data.element import Element
from repro.utils.errors import InvalidParameterError

METRIC = EuclideanMetric()


def _element(uid, x, group=0):
    return Element(uid=uid, vector=np.array([float(x), 0.0]), group=group)


class TestLocalSearchImprove:
    def test_never_decreases_diversity(self):
        rng = np.random.default_rng(0)
        pool = [_element(i, rng.uniform(0, 100), i % 2) for i in range(40)]
        constraint = FairnessConstraint({0: 3, 1: 3})
        start = [e for e in pool if e.group == 0][:3] + [e for e in pool if e.group == 1][:3]
        before = diversity_of(start, METRIC)
        improved = local_search_improve(start, pool, METRIC, constraint)
        assert improved.diversity >= before - 1e-12

    def test_finds_obvious_improvement(self):
        # Group 0: solution holds two nearly identical points, but a far
        # replacement exists in the pool.
        solution = [_element(0, 0.0, 0), _element(1, 0.5, 0), _element(2, 100.0, 1)]
        pool = solution + [_element(3, 50.0, 0)]
        constraint = FairnessConstraint({0: 2, 1: 1})
        improved = local_search_improve(solution, pool, METRIC, constraint)
        assert improved.diversity > diversity_of(solution, METRIC)
        assert 3 in improved.uids

    def test_preserves_fairness(self):
        rng = np.random.default_rng(1)
        pool = [_element(i, rng.uniform(0, 50), i % 3) for i in range(30)]
        constraint = FairnessConstraint({0: 2, 1: 2, 2: 2})
        start = []
        for group in range(3):
            start.extend([e for e in pool if e.group == group][:2])
        improved = local_search_improve(start, pool, METRIC, constraint)
        assert improved.is_fair

    def test_stops_at_local_optimum(self):
        # Pool equals the solution: nothing to swap in.
        solution = [_element(0, 0.0, 0), _element(1, 10.0, 1)]
        constraint = FairnessConstraint({0: 1, 1: 1})
        improved = local_search_improve(solution, solution, METRIC, constraint)
        assert set(improved.uids) == {0, 1}

    def test_iteration_budget_respected(self):
        rng = np.random.default_rng(2)
        pool = [_element(i, rng.uniform(0, 100), 0) for i in range(20)]
        constraint = FairnessConstraint({0: 4})
        start = pool[:4]
        improved = local_search_improve(start, pool, METRIC, constraint, max_iterations=1)
        assert improved.size == 4

    def test_invalid_budget(self):
        constraint = FairnessConstraint({0: 1})
        with pytest.raises(InvalidParameterError):
            local_search_improve([_element(0, 0.0)], [], METRIC, constraint, max_iterations=0)
