"""Crash-safe checkpoint writes and typed resume failures.

Satellite guarantees of the serving PR:

* ``SessionBase.checkpoint`` is atomic — a crash mid-dump (simulated by a
  raising pickler / failing fsync) never leaves a truncated file under
  the target path, and never destroys the previous good checkpoint;
* ``repro.resume`` raises :class:`repro.CheckpointError` — naming the
  offending path — for every corruption mode: missing file, non-pickle
  bytes, truncated pickle, foreign pickle, unsupported version.
"""

import os
import pickle

import pytest

import repro
from repro.api import session as session_module
from repro.core.sfdm2 import SFDM2
from repro.datasets.synthetic import synthetic_blobs

K = 4


@pytest.fixture(scope="module")
def dataset():
    return synthetic_blobs(n=120, m=2, seed=5)


@pytest.fixture()
def session(dataset):
    constraint = repro.equal_representation(K, list(dataset.group_sizes().keys()))
    live = repro.StreamingSession(SFDM2(metric=dataset.metric, constraint=constraint))
    live.offer_batch(list(dataset.stream(seed=3)))
    return live


def _fingerprint(result):
    return (
        [element.uid for element in result.solution.elements],
        result.solution.diversity,
        result.stats.total_distance_computations,
    )


# ----------------------------------------------------------------------
# Crash-safe writes
# ----------------------------------------------------------------------
def test_checkpoint_survives_failing_dump(session, tmp_path, monkeypatch):
    """A raising pickler leaves the previous checkpoint bit-identical."""
    path = session.checkpoint(tmp_path / "state.ckpt")
    good_bytes = path.read_bytes()

    def exploding_dump(obj, handle, protocol=None):
        handle.write(b"partial garbage")  # simulate a mid-write crash
        raise pickle.PicklingError("boom")

    monkeypatch.setattr(session_module.pickle, "dump", exploding_dump)
    with pytest.raises(repro.CheckpointError, match="state.ckpt"):
        session.checkpoint(path)
    monkeypatch.undo()

    assert path.read_bytes() == good_bytes
    assert _fingerprint(repro.resume(path).solution()) == _fingerprint(
        session.solution()
    )


def test_checkpoint_failure_leaves_no_temp_files(session, tmp_path, monkeypatch):
    """The uniquely named temp file is cleaned up on a failed write."""
    def unpicklable(obj, handle, protocol=None):
        raise TypeError("cannot pickle a thread lock")

    monkeypatch.setattr(session_module.pickle, "dump", unpicklable)
    with pytest.raises(repro.CheckpointError):
        session.checkpoint(tmp_path / "fresh.ckpt")
    monkeypatch.undo()
    assert list(tmp_path.iterdir()) == []


def test_checkpoint_into_missing_directory_is_typed(session, tmp_path):
    """A nonexistent target directory fails with CheckpointError, not OSError."""
    target = tmp_path / "no" / "such" / "dir" / "x.ckpt"
    with pytest.raises(repro.CheckpointError, match="x.ckpt"):
        session.checkpoint(target)


def test_checkpoint_write_is_atomic_under_kill(session, tmp_path):
    """Concurrent readers only ever see complete checkpoints.

    The write path goes through ``os.replace`` of a fully fsynced temp
    file, so a reader that opens ``path`` at any moment sees either the
    old complete payload or the new complete payload.  We assert the
    mechanism: the final file loads, and no ``*.tmp`` residue exists.
    """
    path = tmp_path / "atomic.ckpt"
    for _ in range(3):
        session.checkpoint(path)
        restored = repro.resume(path)
        assert restored.elements_offered == session.elements_offered
    assert [p for p in tmp_path.iterdir()] == [path]


# ----------------------------------------------------------------------
# Typed resume failures
# ----------------------------------------------------------------------
def test_resume_missing_file_names_the_path(tmp_path):
    missing = tmp_path / "never-written.ckpt"
    with pytest.raises(repro.CheckpointError, match="never-written.ckpt") as info:
        repro.resume(missing)
    assert "no such file" in str(info.value)
    assert info.value.path == str(missing)


def test_resume_non_pickle_bytes(tmp_path):
    path = tmp_path / "garbage.ckpt"
    path.write_bytes(b"\x00\x01this is not a pickle")
    with pytest.raises(repro.CheckpointError, match="garbage.ckpt") as info:
        repro.resume(path)
    assert "not a readable pickle" in str(info.value)


def test_resume_truncated_pickle(session, tmp_path):
    path = session.checkpoint(tmp_path / "trunc.ckpt")
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(repro.CheckpointError, match="trunc.ckpt"):
        repro.resume(path)


def test_resume_foreign_pickle(tmp_path):
    path = tmp_path / "foreign.ckpt"
    with open(path, "wb") as handle:
        pickle.dump({"hello": "world"}, handle)
    with pytest.raises(repro.CheckpointError, match="not a repro session checkpoint"):
        repro.resume(path)


def test_resume_unsupported_version(session, tmp_path):
    path = session.checkpoint(tmp_path / "version.ckpt")
    with open(path, "rb") as handle:
        payload = pickle.load(handle)
    payload["version"] = 999
    with open(path, "wb") as handle:
        pickle.dump(payload, handle)
    with pytest.raises(repro.CheckpointError, match="999"):
        repro.resume(path)


def test_resume_payload_without_session_object(session, tmp_path):
    path = session.checkpoint(tmp_path / "hollow.ckpt")
    with open(path, "rb") as handle:
        payload = pickle.load(handle)
    payload["session"] = "not a session"
    with open(path, "wb") as handle:
        pickle.dump(payload, handle)
    with pytest.raises(repro.CheckpointError, match="does not contain a session"):
        repro.resume(path)


def test_checkpoint_error_is_invalid_parameter_error(tmp_path):
    """Backward compatibility: existing callers catch InvalidParameterError."""
    with pytest.raises(repro.InvalidParameterError):
        repro.resume(tmp_path / "absent.ckpt")
    assert issubclass(repro.CheckpointError, repro.InvalidParameterError)
