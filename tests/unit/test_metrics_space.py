"""Unit tests for MetricSpace and the pairwise-distance helpers."""

import numpy as np
import pytest

from repro.metrics.space import (
    MetricSpace,
    estimate_distance_bounds,
    exact_distance_bounds,
    pairwise_distances,
)
from repro.metrics.vector import EuclideanMetric
from repro.data.element import Element
from repro.utils.errors import InvalidParameterError


def _line_elements(count=5, group_period=2):
    return [
        Element(uid=i, vector=np.array([float(i), 0.0]), group=i % group_period)
        for i in range(count)
    ]


class TestPairwiseDistances:
    def test_matrix_shape_and_symmetry(self, euclidean_metric):
        elements = _line_elements(4)
        matrix = pairwise_distances(elements, euclidean_metric)
        assert matrix.shape == (4, 4)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_values(self, euclidean_metric):
        elements = _line_elements(3)
        matrix = pairwise_distances(elements, euclidean_metric)
        assert matrix[0, 2] == pytest.approx(2.0)


class TestDistanceBounds:
    def test_exact_bounds_on_line(self, euclidean_metric):
        d_min, d_max = exact_distance_bounds(_line_elements(5), euclidean_metric)
        assert d_min == pytest.approx(1.0)
        assert d_max == pytest.approx(4.0)

    def test_exact_bounds_ignore_duplicates(self, euclidean_metric):
        elements = _line_elements(3) + [Element(uid=99, vector=np.array([0.0, 0.0]), group=0)]
        d_min, _ = exact_distance_bounds(elements, euclidean_metric)
        assert d_min == pytest.approx(1.0)

    def test_exact_bounds_require_two_elements(self, euclidean_metric):
        with pytest.raises(InvalidParameterError):
            exact_distance_bounds(_line_elements(1), euclidean_metric)

    def test_estimated_bounds_bracket_exact(self, euclidean_metric):
        elements = _line_elements(50)
        d_min_exact, d_max_exact = exact_distance_bounds(elements, euclidean_metric)
        d_min_est, d_max_est = estimate_distance_bounds(
            elements, euclidean_metric, sample_size=10, seed=0
        )
        assert d_min_est <= d_min_exact
        assert d_max_est >= d_max_exact

    def test_all_identical_points_fall_back(self, euclidean_metric):
        elements = [Element(uid=i, vector=np.array([1.0, 1.0]), group=0) for i in range(3)]
        d_min, d_max = exact_distance_bounds(elements, euclidean_metric)
        assert d_min > 0
        assert d_max >= d_min * 0  # no crash; d_max may be 0-adjusted upward
        assert d_max >= 0


class TestMetricSpace:
    def test_len_and_iter(self, euclidean_metric):
        space = MetricSpace(_line_elements(4), euclidean_metric)
        assert len(space) == 4
        assert len(list(space)) == 4

    def test_distance_between_elements(self, euclidean_metric):
        elements = _line_elements(3)
        space = MetricSpace(elements, euclidean_metric)
        assert space.distance(elements[0], elements[2]) == pytest.approx(2.0)

    def test_distance_to_set(self, euclidean_metric):
        elements = _line_elements(5)
        space = MetricSpace(elements, euclidean_metric)
        assert space.distance_to_set(elements[0], elements[2:]) == pytest.approx(2.0)
        assert space.distance_to_set(elements[0], []) == float("inf")

    def test_diversity(self, euclidean_metric):
        elements = _line_elements(5)
        space = MetricSpace(elements, euclidean_metric)
        assert space.diversity([elements[0], elements[2], elements[4]]) == pytest.approx(2.0)
        assert space.diversity([elements[0]]) == float("inf")

    def test_groups_and_sizes(self, euclidean_metric):
        space = MetricSpace(_line_elements(5), euclidean_metric)
        assert space.groups() == [0, 1]
        assert space.group_sizes() == {0: 3, 1: 2}

    def test_subset_by_group(self, euclidean_metric):
        space = MetricSpace(_line_elements(4), euclidean_metric)
        assert all(e.group == 1 for e in space.subset_by_group(1))

    def test_distance_bounds_exact_and_sampled(self, euclidean_metric):
        space = MetricSpace(_line_elements(10), euclidean_metric)
        exact = space.distance_bounds(exact=True)
        sampled = space.distance_bounds(exact=False, seed=1)
        assert exact[0] <= exact[1]
        assert sampled[0] <= sampled[1]
