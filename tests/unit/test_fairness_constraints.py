"""Unit tests for fairness constraints, ER/PR quota rules, and auditing."""

import numpy as np
import pytest

from repro.fairness.constraints import (
    FairnessConstraint,
    audit_fairness,
    constraint_from_counts,
    equal_representation,
    proportional_representation,
)
from repro.data.element import Element
from repro.utils.errors import InfeasibleConstraintError, InvalidParameterError


def _element(uid, group):
    return Element(uid=uid, vector=np.array([float(uid)]), group=group)


class TestFairnessConstraint:
    def test_basic_properties(self):
        constraint = FairnessConstraint({0: 3, 1: 2})
        assert constraint.total_size == 5
        assert constraint.num_groups == 2
        assert constraint.groups == [0, 1]
        assert constraint.quota(1) == 2

    def test_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            FairnessConstraint({})

    def test_rejects_non_positive_quota(self):
        with pytest.raises(InvalidParameterError):
            FairnessConstraint({0: 0})

    def test_contains(self):
        constraint = FairnessConstraint({0: 1, 2: 1})
        assert 0 in constraint
        assert 1 not in constraint

    def test_equality_and_hash(self):
        a = FairnessConstraint({0: 2, 1: 3})
        b = FairnessConstraint({1: 3, 0: 2})
        assert a == b
        assert hash(a) == hash(b)

    def test_is_fair(self):
        constraint = FairnessConstraint({0: 2, 1: 1})
        fair = [_element(0, 0), _element(1, 0), _element(2, 1)]
        unfair = [_element(0, 0), _element(1, 1), _element(2, 1)]
        assert constraint.is_fair(fair)
        assert not constraint.is_fair(unfair)

    def test_is_fair_rejects_foreign_group(self):
        constraint = FairnessConstraint({0: 1, 1: 1})
        assert not constraint.is_fair([_element(0, 0), _element(1, 5)])

    def test_is_independent(self):
        constraint = FairnessConstraint({0: 2, 1: 1})
        assert constraint.is_independent([_element(0, 0)])
        assert constraint.is_independent([_element(0, 0), _element(1, 0)])
        assert not constraint.is_independent(
            [_element(0, 0), _element(1, 0), _element(2, 0)]
        )

    def test_violation(self):
        constraint = FairnessConstraint({0: 2, 1: 2})
        elements = [_element(0, 0), _element(1, 0), _element(2, 0), _element(3, 1)]
        # group 0 has 3 (quota 2) -> +1; group 1 has 1 (quota 2) -> +1
        assert constraint.violation(elements) == 2

    def test_violation_counts_foreign_elements(self):
        constraint = FairnessConstraint({0: 1})
        assert constraint.violation([_element(0, 0), _element(1, 9)]) == 1

    def test_validate_feasible(self):
        constraint = FairnessConstraint({0: 3, 1: 2})
        constraint.validate_feasible({0: 10, 1: 2})
        with pytest.raises(InfeasibleConstraintError):
            constraint.validate_feasible({0: 10, 1: 1})

    def test_group_counts(self):
        constraint = FairnessConstraint({0: 2, 1: 2})
        counts = constraint.group_counts([_element(0, 0), _element(1, 1), _element(2, 7)])
        assert counts == {0: 1, 1: 1}


class TestEqualRepresentation:
    def test_even_split(self):
        constraint = equal_representation(10, [0, 1])
        assert constraint.quotas == {0: 5, 1: 5}

    def test_uneven_split_gives_extras_to_first_groups(self):
        constraint = equal_representation(10, [0, 1, 2])
        assert constraint.quotas == {0: 4, 1: 3, 2: 3}
        assert constraint.total_size == 10

    def test_requires_k_at_least_m(self):
        with pytest.raises(InvalidParameterError):
            equal_representation(2, [0, 1, 2])

    def test_deduplicates_groups(self):
        constraint = equal_representation(4, [1, 1, 0, 0])
        assert constraint.num_groups == 2

    def test_requires_groups(self):
        with pytest.raises(InvalidParameterError):
            equal_representation(4, [])


class TestProportionalRepresentation:
    def test_totals_to_k(self):
        constraint = proportional_representation(20, {0: 670, 1: 330})
        assert constraint.total_size == 20

    def test_respects_skew(self):
        constraint = proportional_representation(20, {0: 670, 1: 330})
        assert constraint.quota(0) > constraint.quota(1)

    def test_minimum_one_per_group(self):
        constraint = proportional_representation(10, {0: 10_000, 1: 1})
        assert constraint.quota(1) >= 1

    def test_rejects_too_small_k(self):
        with pytest.raises(InvalidParameterError):
            proportional_representation(2, {0: 5, 1: 5, 2: 5})

    def test_rejects_non_positive_sizes(self):
        with pytest.raises(InvalidParameterError):
            proportional_representation(4, {0: 0, 1: 5})

    def test_exact_proportions_recovered(self):
        constraint = proportional_representation(10, {0: 500, 1: 300, 2: 200})
        assert constraint.quotas == {0: 5, 1: 3, 2: 2}


class TestAuditFairness:
    def test_fair_audit(self):
        constraint = FairnessConstraint({0: 1, 1: 1})
        audit = audit_fairness([_element(0, 0), _element(1, 1)], constraint)
        assert audit.is_fair
        assert bool(audit)
        assert audit.violation == 0

    def test_unfair_audit(self):
        constraint = FairnessConstraint({0: 2, 1: 1})
        audit = audit_fairness([_element(0, 0), _element(1, 1)], constraint)
        assert not audit.is_fair
        assert audit.violation == 1
        assert audit.counts == {0: 1, 1: 1}


class TestConstraintFromCounts:
    def test_builds_matching_constraint(self):
        constraint = constraint_from_counts({0: 4, 1: 6})
        assert constraint.quotas == {0: 4, 1: 6}
