"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_datasets_subcommand_parses(self):
        args = build_parser().parse_args(["datasets"])
        assert args.command == "datasets"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--dataset", "adult-sex"])
        assert args.algorithm == "SFDM2"
        assert args.k == 20
        assert args.fairness == "equal"

    def test_compare_with_output(self):
        args = build_parser().parse_args(
            ["compare", "--dataset", "synthetic-m2", "-k", "8", "--output", "x.csv"]
        )
        assert args.k == 8
        assert args.output == "x.csv"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--dataset", "adult-sex", "--algorithm", "Magic"])

    def test_parallel_flag_defaults(self):
        args = build_parser().parse_args(["run", "--dataset", "adult-sex"])
        assert args.shards == 4
        assert args.backend == "serial"

    def test_parallel_algorithm_accepted(self):
        args = build_parser().parse_args(
            [
                "run",
                "--dataset",
                "synthetic-m2",
                "--algorithm",
                "ParallelFDM",
                "--shards",
                "8",
                "--backend",
                "process",
            ]
        )
        assert args.algorithm == "ParallelFDM"
        assert args.shards == 8
        assert args.backend == "process"

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--dataset", "adult-sex", "--backend", "gpu"]
            )

    def test_compare_include_extended_flag(self):
        args = build_parser().parse_args(
            ["compare", "--dataset", "synthetic-m2", "--include-extended"]
        )
        assert args.include_extended

    def test_missing_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])


class TestMain:
    def test_datasets_lists_registry(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "adult-sex" in output
        assert "lyrics-genre" in output

    def test_run_small_experiment(self, capsys):
        code = main(
            ["run", "--dataset", "synthetic-m2", "-k", "6", "--n", "200", "--seed", "1"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "SFDM2" in output
        assert "diversity" in output

    def test_run_offline_algorithm(self, capsys):
        code = main(
            ["run", "--dataset", "synthetic-m2", "--algorithm", "GMM", "-k", "5", "--n", "150"]
        )
        assert code == 0
        assert "GMM" in capsys.readouterr().out

    def test_compare_writes_csv(self, tmp_path, capsys):
        output = tmp_path / "rows.csv"
        code = main(
            [
                "compare",
                "--dataset",
                "synthetic-m2",
                "-k",
                "6",
                "--n",
                "200",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        assert output.exists()
        content = output.read_text()
        assert "SFDM1" in content and "SFDM2" in content

    def test_run_parallel_algorithm(self, capsys):
        code = main(
            [
                "run",
                "--dataset",
                "synthetic-m2",
                "--algorithm",
                "ParallelFDM",
                "-k",
                "6",
                "--n",
                "300",
                "--shards",
                "3",
                "--backend",
                "thread",
            ]
        )
        assert code == 0
        assert "ParallelFDM" in capsys.readouterr().out

    @pytest.mark.parametrize("algorithm", ["Coreset", "WindowFDM"])
    def test_run_extended_algorithms(self, algorithm, capsys):
        code = main(
            [
                "run",
                "--dataset",
                "synthetic-m2",
                "--algorithm",
                algorithm,
                "-k",
                "6",
                "--n",
                "300",
            ]
        )
        assert code == 0
        assert algorithm in capsys.readouterr().out

    def test_run_sliding_window_with_window_flags(self, capsys):
        code = main(
            [
                "run",
                "--dataset",
                "synthetic-m2",
                "--algorithm",
                "SlidingWindowFDM",
                "-k",
                "6",
                "--n",
                "400",
                "--window",
                "150",
                "--blocks",
                "5",
            ]
        )
        assert code == 0
        assert "SlidingWindowFDM" in capsys.readouterr().out

    def test_invalid_window_fails_cleanly(self, capsys):
        code = main(
            [
                "run",
                "--dataset",
                "synthetic-m2",
                "--algorithm",
                "SlidingWindowFDM",
                "-k",
                "6",
                "--n",
                "400",
                "--window",
                "0",
            ]
        )
        assert code == 1
        assert "window" in capsys.readouterr().err

    def test_invalid_shards_fails_cleanly(self, capsys):
        code = main(
            [
                "run",
                "--dataset",
                "synthetic-m2",
                "--algorithm",
                "ParallelFDM",
                "-k",
                "4",
                "--n",
                "200",
                "--shards",
                "0",
            ]
        )
        assert code == 1
        assert "shards" in capsys.readouterr().err

    def test_compare_include_extended_runs_parallel(self, capsys):
        code = main(
            [
                "compare",
                "--dataset",
                "synthetic-m2",
                "-k",
                "6",
                "--n",
                "200",
                "--include-extended",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        for name in ("ParallelFDM", "Coreset", "WindowFDM", "SlidingWindowFDM"):
            assert name in output

    def test_unknown_dataset_fails_cleanly(self, capsys):
        code = main(["run", "--dataset", "not-a-dataset", "-k", "4"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_proportional_fairness_option(self, capsys):
        code = main(
            [
                "run",
                "--dataset",
                "synthetic-m2",
                "-k",
                "6",
                "--n",
                "200",
                "--fairness",
                "proportional",
            ]
        )
        assert code == 0
        assert "proportional" in capsys.readouterr().out


class TestAlgorithmListing:
    def test_list_algorithms_flag_prints_catalogue_and_exits(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--list-algorithms"])
        assert excinfo.value.code == 0
        output = capsys.readouterr().out
        for name in ("SFDM1", "SFDM2", "GMM", "ParallelFDM", "WindowFDM"):
            assert name in output
        assert "sessions" in output and "kind" in output

    def test_algorithms_subcommand(self, capsys):
        assert main(["algorithms"]) == 0
        output = capsys.readouterr().out
        assert "StreamingDM" in output and "capabilities" in output

    def test_choices_come_from_registry(self):
        from repro.api.registry import algorithm_names

        args = build_parser().parse_args(
            ["run", "--dataset", "adult-sex", "--algorithm", "StreamingDM"]
        )
        assert args.algorithm == "StreamingDM"
        assert set(algorithm_names()) >= {"StreamingDM", "SFDM2", "ParallelFDM"}

    def test_run_streaming_dm(self, capsys):
        code = main(
            [
                "run",
                "--dataset",
                "synthetic-m2",
                "--algorithm",
                "StreamingDM",
                "-k",
                "5",
                "--n",
                "150",
            ]
        )
        assert code == 0
        assert "StreamingDM" in capsys.readouterr().out


class TestServe:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 8747
        assert args.max_live == 256
        assert args.default_algorithm == "SFDM2"
        assert args.state_dir == "serving-state"

    def test_serve_flags_parse(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--port", "0",
                "--max-sessions", "50",
                "--max-live", "4",
                "--max-batch", "32",
                "--flush-ms", "5",
                "--max-queue", "100",
                "--state-dir", "/tmp/x",
                "--default-algorithm", "SFDM1",
            ]
        )
        assert args.port == 0 and args.max_live == 4 and args.max_batch == 32
        assert args.flush_ms == 5.0 and args.max_queue == 100
        assert args.default_algorithm == "SFDM1"

    def test_serve_rejects_unknown_default_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--default-algorithm", "Magic"])

    def test_serve_bad_config_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["serve", "--max-live", "0", "--state-dir", str(tmp_path / "s")]
        )
        assert code == 1
        assert "max_live" in capsys.readouterr().err

    def test_serve_subprocess_announces_and_drains(self, tmp_path):
        """Full binary path: spawn, parse the announce line, SIGTERM, exit 0."""
        import json
        import os
        import signal
        import subprocess
        import sys
        from http.client import HTTPConnection

        from pathlib import Path

        import repro

        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--state-dir", str(tmp_path / "state")],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            announce = proc.stdout.readline().strip()
            assert announce.startswith("serving on http://")
            port = int(announce.rsplit(":", 1)[1])
            conn = HTTPConnection("127.0.0.1", port, timeout=10)
            conn.request(
                "POST",
                "/sessions",
                body=json.dumps({"k": 3, "groups": 2, "name": "cli"}),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 201
            response.read()
            conn.close()
        finally:
            proc.send_signal(signal.SIGTERM)
            output, _ = proc.communicate(timeout=30)
        assert proc.returncode == 0
        assert "drained 1 session(s)" in output
        assert (tmp_path / "state" / "cli.ckpt").exists()
