"""Unit tests for the dataset generators, surrogates, and registry."""

import numpy as np
import pytest

from repro.datasets.registry import DATASETS, dataset_names, load_dataset
from repro.datasets.surrogates import (
    adult_surrogate,
    celeba_surrogate,
    census_surrogate,
    lyrics_surrogate,
)
from repro.datasets.synthetic import synthetic_blobs, uniform_points
from repro.metrics.vector import AngularMetric, EuclideanMetric, ManhattanMetric
from repro.utils.errors import InvalidParameterError


class TestSyntheticBlobs:
    def test_size_and_groups(self):
        dataset = synthetic_blobs(n=200, m=3, seed=0)
        assert dataset.size == 200
        assert dataset.num_groups == 3

    def test_reproducible_with_seed(self):
        a = synthetic_blobs(n=50, m=2, seed=1)
        b = synthetic_blobs(n=50, m=2, seed=1)
        assert np.allclose(a.elements[10].vector, b.elements[10].vector)

    def test_different_seeds_differ(self):
        a = synthetic_blobs(n=50, m=2, seed=1)
        b = synthetic_blobs(n=50, m=2, seed=2)
        assert not np.allclose(a.elements[10].vector, b.elements[10].vector)

    def test_metric_is_euclidean(self):
        assert isinstance(synthetic_blobs(n=10, seed=0).metric, EuclideanMetric)

    def test_dimensions_parameter(self):
        dataset = synthetic_blobs(n=20, dimensions=5, seed=0)
        assert dataset.elements[0].vector.shape == (5,)

    def test_rejects_non_positive_n(self):
        with pytest.raises(InvalidParameterError):
            synthetic_blobs(n=0)

    def test_stream_and_space_views(self):
        dataset = synthetic_blobs(n=30, m=2, seed=0)
        assert len(dataset.stream(seed=1)) == 30
        assert len(dataset.space()) == 30

    def test_group_sizes_sum_to_n(self):
        dataset = synthetic_blobs(n=100, m=4, seed=0)
        assert sum(dataset.group_sizes().values()) == 100


class TestUniformPoints:
    def test_points_in_box(self):
        dataset = uniform_points(n=50, low=0.0, high=1.0, seed=3)
        for element in dataset.elements:
            assert np.all(element.vector >= 0.0)
            assert np.all(element.vector <= 1.0)

    def test_single_group_by_default(self):
        assert uniform_points(n=10, seed=0).num_groups == 1


class TestAdultSurrogate:
    def test_sex_grouping(self):
        dataset = adult_surrogate(n=500, group_by="sex", seed=0)
        assert dataset.num_groups == 2
        assert isinstance(dataset.metric, EuclideanMetric)

    def test_race_grouping_has_five_groups(self):
        dataset = adult_surrogate(n=2000, group_by="race", seed=0)
        assert dataset.num_groups == 5

    def test_sex_race_grouping(self):
        dataset = adult_surrogate(n=3000, group_by="sex+race", seed=0)
        assert dataset.num_groups <= 10
        assert dataset.num_groups >= 6

    def test_sex_skew_matches_paper(self):
        dataset = adult_surrogate(n=5000, group_by="sex", seed=1)
        sizes = dataset.group_sizes()
        male_fraction = sizes[0] / dataset.size
        assert 0.6 < male_fraction < 0.75

    def test_features_standardized(self):
        dataset = adult_surrogate(n=2000, group_by="sex", seed=0)
        features = np.array([e.vector for e in dataset.elements])
        assert np.allclose(features.mean(axis=0), 0.0, atol=0.1)
        assert np.allclose(features.std(axis=0), 1.0, atol=0.1)

    def test_six_features(self):
        dataset = adult_surrogate(n=100, seed=0)
        assert dataset.elements[0].vector.shape == (6,)

    def test_invalid_group_by(self):
        with pytest.raises(InvalidParameterError):
            adult_surrogate(n=100, group_by="income")


class TestCelebaSurrogate:
    def test_binary_features_of_dimension_41(self):
        dataset = celeba_surrogate(n=300, seed=0)
        vector = dataset.elements[0].vector
        assert vector.shape == (41,)
        assert set(np.unique(vector)).issubset({0.0, 1.0})

    def test_metric_is_manhattan(self):
        assert isinstance(celeba_surrogate(n=50, seed=0).metric, ManhattanMetric)

    def test_joint_grouping_has_four_groups(self):
        assert celeba_surrogate(n=2000, group_by="sex+age", seed=0).num_groups == 4

    def test_invalid_group_by(self):
        with pytest.raises(InvalidParameterError):
            celeba_surrogate(n=50, group_by="hair")


class TestCensusSurrogate:
    def test_dimension_and_metric(self):
        dataset = census_surrogate(n=300, seed=0)
        assert dataset.elements[0].vector.shape == (25,)
        assert isinstance(dataset.metric, ManhattanMetric)

    def test_age_grouping_has_seven_groups(self):
        assert census_surrogate(n=3000, group_by="age", seed=0).num_groups == 7

    def test_joint_grouping_has_fourteen_groups(self):
        assert census_surrogate(n=10_000, group_by="sex+age", seed=0).num_groups == 14

    def test_invalid_group_by(self):
        with pytest.raises(InvalidParameterError):
            census_surrogate(n=50, group_by="height")


class TestLyricsSurrogate:
    def test_topic_vectors_on_simplex(self):
        dataset = lyrics_surrogate(n=200, seed=0)
        vector = dataset.elements[0].vector
        assert vector.shape == (50,)
        assert np.all(vector >= 0)
        assert np.isclose(vector.sum(), 1.0)

    def test_metric_is_angular(self):
        assert isinstance(lyrics_surrogate(n=50, seed=0).metric, AngularMetric)

    def test_fifteen_genres(self):
        assert lyrics_surrogate(n=5000, seed=0).num_groups == 15

    def test_long_tailed_distribution(self):
        dataset = lyrics_surrogate(n=5000, seed=0)
        sizes = sorted(dataset.group_sizes().values(), reverse=True)
        assert sizes[0] > 3 * sizes[-1]


class TestRegistry:
    def test_all_names_loadable_at_small_n(self):
        for name in dataset_names():
            dataset = load_dataset(name, n=100, seed=0)
            assert dataset.size == 100

    def test_table2_settings_present(self):
        expected = {
            "adult-sex", "adult-race", "adult-sex+race",
            "celeba-sex", "celeba-age", "celeba-sex+age",
            "census-sex", "census-age", "census-sex+age",
            "lyrics-genre",
        }
        assert expected.issubset(set(dataset_names()))

    def test_unknown_name_raises(self):
        with pytest.raises(InvalidParameterError):
            load_dataset("imagenet")

    def test_default_n_used_when_not_overridden(self):
        dataset = load_dataset("adult-sex", seed=0)
        assert dataset.size == 5_000

    def test_registry_is_consistent_with_names(self):
        assert set(DATASETS.keys()) == set(dataset_names())
