"""Unit tests for shard packing, summarizers, merge tree, and the driver."""

import numpy as np
import pytest

from repro.datasets.synthetic import synthetic_blobs
from repro.fairness.constraints import equal_representation
from repro.metrics.base import CallableMetric
from repro.metrics.vector import EuclideanMetric
from repro.data.store import ElementStore
from repro.parallel import ExecutionPlanner, ParallelFDM, merge_tree
from repro.parallel.driver import _summarize_shard, _ShardJob
from repro.parallel.shm import ShardRef, ship_shards, shm_available
from repro.parallel.merge import merge_pair
from repro.parallel.summarize import (
    GMMShardSummarizer,
    StreamShardSummarizer,
    resolve_summarizer,
)
from repro.data.element import Element
from repro.utils.errors import InvalidParameterError

METRIC = EuclideanMetric()


def _elements(count, period=2):
    return [
        Element(uid=i, vector=np.array([float(i), 0.0]), group=i % period)
        for i in range(count)
    ]


class TestShardShipping:
    def test_pickle_transport_ships_columnar_stores(self):
        elements = _elements(7, period=3)
        elements[2].label = "special"
        payloads, block, used = ship_shards([elements], transport="pickle")
        assert block is None and used == "pickle"
        (shipped,) = payloads
        assert isinstance(shipped, ElementStore)
        rebuilt = shipped.elements()
        assert [e.uid for e in rebuilt] == [e.uid for e in elements]
        assert [e.group for e in rebuilt] == [e.group for e in elements]
        assert rebuilt[2].label == "special"
        assert all(
            np.allclose(a.vector, b.vector) for a, b in zip(rebuilt, elements)
        )

    def test_shm_transport_ships_descriptors(self):
        if not shm_available():
            pytest.skip("shared memory unavailable on this platform")
        payloads, block, used = ship_shards([_elements(5), _elements(4)])
        try:
            assert used == "shm" and block is not None
            assert all(isinstance(ref, ShardRef) for ref in payloads)
            with payloads[0].attach() as attached:
                assert attached.store.features.shape == (5, 2)
        finally:
            if block is not None:
                block.dispose()

    def test_ragged_payloads_fall_back_to_element_lists(self):
        elements = [
            Element(uid=0, vector=np.array([1.0]), group=0),
            Element(uid=1, vector=np.array([1.0, 2.0]), group=1),
        ]
        payloads, block, used = ship_shards([elements])
        assert block is None and used == "pickle"
        (shipped,) = payloads
        assert not isinstance(shipped, ElementStore)
        assert [e.uid for e in shipped] == [0, 1]
        assert np.allclose(shipped[1].vector, [1.0, 2.0])

    def test_summary_elements_detach_from_store_when_pickled(self):
        import pickle

        store = ElementStore.from_elements(_elements(20))
        views = store.elements()
        restored = pickle.loads(pickle.dumps(views[:3]))
        assert [e.uid for e in restored] == [0, 1, 2]
        assert all(e.store is None and e.row == -1 for e in restored)
        assert all(
            np.allclose(a.vector, b.vector) for a, b in zip(restored, views[:3])
        )

    def test_summarize_shard_reports_worker_distance_calls(self):
        job = _ShardJob(
            shard=ElementStore.from_elements(_elements(20)),
            metric=METRIC,
            k=4,
            summarizer=GMMShardSummarizer(),
            start_index=0,
        )
        summary, calls = _summarize_shard(job)
        assert summary and calls > 0


class TestSummarizers:
    def test_gmm_summary_keeps_every_group(self):
        summary = GMMShardSummarizer().summarize(_elements(30, period=3), METRIC, 4)
        assert {e.group for e in summary} == {0, 1, 2}

    def test_stream_summary_keeps_every_group(self):
        summary = StreamShardSummarizer(chunk_size=8).summarize(
            _elements(30, period=3), METRIC, 4
        )
        assert {e.group for e in summary} == {0, 1, 2}
        uids = [e.uid for e in summary]
        assert len(uids) == len(set(uids))

    def test_stream_summary_single_element_shard(self):
        summary = StreamShardSummarizer().summarize(_elements(1), METRIC, 3)
        assert [e.uid for e in summary] == [0]

    def test_stream_summary_duplicate_only_shard(self):
        elements = [
            Element(uid=i, vector=np.array([1.0, 1.0]), group=0) for i in range(5)
        ]
        summary = StreamShardSummarizer(chunk_size=4).summarize(elements, METRIC, 3)
        assert 1 <= len(summary) <= 3

    def test_degenerate_shard_keeps_every_group(self):
        # Duplicate-only first chunk (no usable distance ladder) with the
        # minority group appearing only after position k: the fallback
        # must still keep up to k members of *every* group.
        elements = [
            Element(uid=i, vector=np.array([1.0, 1.0]), group=0) for i in range(6)
        ] + [
            Element(uid=6 + i, vector=np.array([2.0, 2.0]), group=1) for i in range(2)
        ]
        summary = StreamShardSummarizer(chunk_size=4).summarize(elements, METRIC, 2)
        assert {e.group for e in summary} == {0, 1}
        assert sum(1 for e in summary if e.group == 0) <= 2

    def test_stream_summary_works_without_batch_kernels(self):
        scalar_metric = CallableMetric(
            lambda x, y: float(np.abs(np.asarray(x) - np.asarray(y)).sum())
        )
        summary = StreamShardSummarizer(chunk_size=8).summarize(
            _elements(20), scalar_metric, 3
        )
        assert summary

    def test_resolve_summarizer(self):
        assert isinstance(resolve_summarizer(None), GMMShardSummarizer)
        assert isinstance(resolve_summarizer("stream"), StreamShardSummarizer)
        instance = GMMShardSummarizer()
        assert resolve_summarizer(instance) is instance
        with pytest.raises(InvalidParameterError):
            resolve_summarizer("magic")

    def test_stream_summarizer_validation(self):
        with pytest.raises(InvalidParameterError):
            StreamShardSummarizer(chunk_size=0)
        with pytest.raises(InvalidParameterError):
            StreamShardSummarizer(epsilon=1.5)


class TestMergeTree:
    def test_merge_pair_deduplicates_by_uid(self):
        elements = _elements(10)
        merged = merge_pair(elements[:6], elements[4:], METRIC, 4)
        uids = [e.uid for e in merged]
        assert len(uids) == len(set(uids))
        assert {e.group for e in merged} == {0, 1}

    def test_tree_reduces_to_single_summary(self):
        parts = [_elements(8), _elements(8), _elements(8), _elements(8)]
        coreset, rounds = merge_tree(parts, METRIC, 3)
        assert rounds == 2
        assert coreset

    def test_odd_summary_carried_over(self):
        parts = [_elements(6)[:2], _elements(6)[2:4], _elements(6)[4:]]
        coreset, rounds = merge_tree(parts, METRIC, 2)
        assert rounds == 2
        assert {e.uid for e in coreset} <= {0, 1, 2, 3, 4, 5}

    def test_empty_and_single_inputs(self):
        assert merge_tree([], METRIC, 3) == ([], 0)
        coreset, rounds = merge_tree([[], _elements(4)], METRIC, 3)
        assert rounds == 0
        assert [e.uid for e in coreset] == [0, 1, 2, 3]


class TestParallelFDM:
    def test_eager_validation(self):
        constraint = equal_representation(4, [0, 1])
        with pytest.raises(InvalidParameterError):
            ParallelFDM(METRIC, constraint, shards=0)
        with pytest.raises(InvalidParameterError):
            ParallelFDM(METRIC, constraint, backend="gpu")
        with pytest.raises(InvalidParameterError):
            ParallelFDM(METRIC, constraint, strategy="random")
        with pytest.raises(InvalidParameterError):
            ParallelFDM(METRIC, constraint, summarizer="magic")
        with pytest.raises(InvalidParameterError):
            ParallelFDM(METRIC, constraint, summary_size=0)
        with pytest.raises(InvalidParameterError):
            ParallelFDM(METRIC, constraint, transport="carrier-pigeon")

    def test_run_returns_fair_solution_and_accounting(self):
        dataset = synthetic_blobs(n=600, m=3, seed=5)
        constraint = equal_representation(9, list(dataset.group_sizes()))
        result = ParallelFDM(
            dataset.metric, constraint, shards=4, backend="serial", seed=3
        ).run(dataset.stream(seed=1))
        assert result.solution is not None and result.solution.is_fair
        assert result.algorithm == "ParallelFDM"
        assert result.stats.elements_processed == 600
        assert result.stats.extra["shards"] == 4.0
        assert result.stats.extra["merge_rounds"] == 2.0
        assert result.stats.stream_distance_computations > 0
        assert result.stats.postprocess_distance_computations > 0
        # Distributed accounting: far below holding all n elements at once.
        assert result.stats.peak_stored_elements < 600
        assert result.params["backend"] == "serial"

    def test_reproducible_for_fixed_configuration(self):
        dataset = synthetic_blobs(n=400, m=2, seed=8)
        constraint = equal_representation(6, list(dataset.group_sizes()))

        def _run():
            return ParallelFDM(
                dataset.metric, constraint, shards=3, backend="serial", seed=17
            ).run(dataset.stream(seed=2))

        assert _run().solution.uids == _run().solution.uids

    def test_seed_varies_gmm_starts(self):
        dataset = synthetic_blobs(n=300, m=2, seed=8)
        constraint = equal_representation(6, list(dataset.group_sizes()))
        runs = {
            seed: ParallelFDM(
                dataset.metric, constraint, shards=3, seed=seed
            ).run(dataset.stream(seed=2))
            for seed in (None, 1, 2)
        }
        # All runs must be fair regardless of the seeded start positions.
        assert all(r.solution.is_fair for r in runs.values())

    def test_shard_count_capped_for_tiny_streams(self):
        dataset = synthetic_blobs(n=6, m=2, seed=4)
        constraint = equal_representation(2, list(dataset.group_sizes()))
        result = ParallelFDM(dataset.metric, constraint, shards=32).run(
            dataset.stream(seed=None)
        )
        assert result.solution is not None
        assert result.stats.extra["shards"] <= 6.0

    def test_contiguous_strategy_runs(self):
        dataset = synthetic_blobs(n=200, m=2, seed=4)
        constraint = equal_representation(4, list(dataset.group_sizes()))
        result = ParallelFDM(
            dataset.metric, constraint, shards=4, strategy="contiguous"
        ).run(dataset.stream(seed=1))
        assert result.solution.is_fair

    def test_auto_plan_recorded_in_params(self):
        dataset = synthetic_blobs(n=120, m=2, seed=4)
        constraint = equal_representation(4, list(dataset.group_sizes()))
        result = ParallelFDM(
            dataset.metric, constraint, shards="auto", backend="auto"
        ).run(dataset.stream(seed=1))
        assert result.solution.is_fair
        assert result.params["backend"] in ("serial", "thread", "process")
        assert isinstance(result.params["shards"], int)
        assert "plan" in result.params

    def test_inline_transport_for_in_process_backends(self):
        dataset = synthetic_blobs(n=120, m=2, seed=4)
        constraint = equal_representation(4, list(dataset.group_sizes()))
        for backend in ("serial", "thread"):
            result = ParallelFDM(
                dataset.metric, constraint, shards=3, backend=backend
            ).run(dataset.stream(seed=1))
            assert result.params["transport"] == "inline"


class TestExecutionPlanner:
    def test_small_inputs_stay_serial(self):
        plan = ExecutionPlanner(cpus=16).plan(1000, dim=2)
        assert plan.backend == "serial"
        assert 1 <= plan.shards <= 4
        assert "cutoff" in plan.reason

    def test_single_cpu_stays_serial_at_any_size(self):
        plan = ExecutionPlanner(cpus=1).plan(10_000_000, dim=32)
        assert plan.backend == "serial"
        assert "single usable cpu" in plan.reason

    def test_large_inputs_go_to_processes(self):
        plan = ExecutionPlanner(cpus=8).plan(1_000_000, dim=8)
        assert plan.backend == "process"
        assert 8 <= plan.shards <= 16

    def test_wide_rows_lower_the_cutoff(self):
        narrow = ExecutionPlanner(cpus=8).plan(20_000, dim=2)
        wide = ExecutionPlanner(cpus=8).plan(20_000, dim=128)
        assert narrow.backend == "serial"
        assert wide.backend == "process"

    def test_shards_are_bounded(self):
        plan = ExecutionPlanner(cpus=64, max_shards=32).plan(100_000_000, dim=8)
        assert plan.shards == 32

    def test_chunk_size_is_a_bounded_power_of_two(self):
        for n in (100, 10_000, 10_000_000):
            plan = ExecutionPlanner(cpus=4).plan(n, dim=2)
            assert 256 <= plan.chunk_size <= 4096
            assert plan.chunk_size & (plan.chunk_size - 1) == 0

    def test_planner_validation(self):
        with pytest.raises(InvalidParameterError):
            ExecutionPlanner(serial_cutoff=0)
        with pytest.raises(InvalidParameterError):
            ExecutionPlanner(cpus=0)
