"""Unit tests for argument-validation helpers."""

import pytest

from repro.utils.errors import InvalidParameterError
from repro.utils.validation import (
    require,
    require_in_open_interval,
    require_non_empty,
    require_non_negative_int,
    require_positive_int,
)


class TestRequire:
    def test_passes_when_condition_true(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(InvalidParameterError, match="broken"):
            require(False, "broken")


class TestRequirePositiveInt:
    def test_accepts_positive_integers(self):
        assert require_positive_int(5, "k") == 5

    def test_rejects_zero(self):
        with pytest.raises(InvalidParameterError):
            require_positive_int(0, "k")

    def test_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            require_positive_int(-3, "k")

    def test_rejects_bool(self):
        with pytest.raises(InvalidParameterError):
            require_positive_int(True, "k")

    def test_rejects_float(self):
        with pytest.raises(InvalidParameterError):
            require_positive_int(2.5, "k")

    def test_error_message_contains_name(self):
        with pytest.raises(InvalidParameterError, match="solution_size"):
            require_positive_int(-1, "solution_size")


class TestRequireNonNegativeInt:
    def test_accepts_zero(self):
        assert require_non_negative_int(0, "count") == 0

    def test_accepts_positive(self):
        assert require_non_negative_int(7, "count") == 7

    def test_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            require_non_negative_int(-1, "count")

    def test_rejects_bool(self):
        with pytest.raises(InvalidParameterError):
            require_non_negative_int(False, "count")


class TestRequireInOpenInterval:
    def test_accepts_interior_point(self):
        assert require_in_open_interval(0.5, 0.0, 1.0, "epsilon") == 0.5

    def test_rejects_lower_boundary(self):
        with pytest.raises(InvalidParameterError):
            require_in_open_interval(0.0, 0.0, 1.0, "epsilon")

    def test_rejects_upper_boundary(self):
        with pytest.raises(InvalidParameterError):
            require_in_open_interval(1.0, 0.0, 1.0, "epsilon")

    def test_rejects_non_numeric(self):
        with pytest.raises(InvalidParameterError):
            require_in_open_interval("abc", 0.0, 1.0, "epsilon")

    def test_converts_to_float(self):
        value = require_in_open_interval(1, 0, 2, "x")
        assert isinstance(value, float)


class TestRequireNonEmpty:
    def test_accepts_non_empty_list(self):
        assert require_non_empty([1], "items") == [1]

    def test_rejects_empty_list(self):
        with pytest.raises(InvalidParameterError):
            require_non_empty([], "items")

    def test_rejects_empty_dict(self):
        with pytest.raises(InvalidParameterError):
            require_non_empty({}, "mapping")
