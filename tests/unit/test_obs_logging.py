"""Tests for the ``repro`` package logging: routed warnings stay visible.

The library is silent by default (``NullHandler`` on the ``repro``
logger), but three degradations warrant a warning an embedding
application can surface: ``index="auto"`` silently degrading to the
brute-force kernels, a window ``blocks`` request clamped to the window
length, and the bounded distance cache starting to evict.
"""

import logging

import pytest

import repro
from repro import obs
from repro.datasets.synthetic import synthetic_blobs
from repro.index.tree import resolve_index_kind
from repro.metrics.cached import CachedMetric
from repro.metrics.vector import cosine, euclidean


class TestPackageLogger:
    def test_root_logger_has_null_handler(self):
        handlers = logging.getLogger("repro").handlers
        assert any(isinstance(handler, logging.NullHandler) for handler in handlers)

    def test_get_logger_returns_children(self):
        assert obs.get_logger() is logging.getLogger("repro")
        assert obs.get_logger("index").name == "repro.index"
        assert obs.get_logger("metrics").parent.name == "repro"


class TestAutoIndexDegradation:
    def test_auto_on_unsupported_metric_warns_and_degrades(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro"):
            kind = resolve_index_kind("auto", cosine())
        assert kind is None
        messages = [r.message for r in caplog.records if r.name == "repro.index"]
        assert any("brute-force" in message for message in messages)

    def test_auto_on_supported_metric_is_silent(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro"):
            kind = resolve_index_kind("auto", euclidean())
        assert kind == "kd"
        assert not [r for r in caplog.records if r.name.startswith("repro")]


class TestClampedBlocks:
    def test_blocks_beyond_window_warns_and_clamps(self, caplog):
        dataset = synthetic_blobs(n=60, m=2, seed=5)
        with caplog.at_level(logging.WARNING, logger="repro"):
            result = repro.solve(
                dataset,
                k=4,
                algorithm="SlidingWindowFDM",
                seed=1,
                window=30,
                blocks=50,
            )
        assert result.params["blocks"] == 30
        messages = [r.message for r in caplog.records if r.name == "repro.api"]
        assert any("clamping" in message for message in messages)

    def test_blocks_within_window_is_silent(self, caplog):
        dataset = synthetic_blobs(n=60, m=2, seed=5)
        with caplog.at_level(logging.WARNING, logger="repro"):
            repro.solve(
                dataset, k=4, algorithm="SlidingWindowFDM", seed=1, window=30, blocks=5
            )
        assert not [r for r in caplog.records if r.name == "repro.api"]


class TestCacheEvictionWarning:
    def test_first_eviction_warns_once(self, caplog):
        metric = CachedMetric(euclidean(), maxsize=2)
        points = [([float(i)], i) for i in range(4)]
        with caplog.at_level(logging.WARNING, logger="repro"):
            for (x, kx), (y, ky) in zip(points, points[1:]):
                metric.distance_keyed(kx, x, ky, y)
        assert metric.evictions >= 1
        warnings = [r for r in caplog.records if r.name == "repro.metrics"]
        assert len(warnings) == 1
        assert "capacity" in warnings[0].message

    def test_unbounded_cache_never_warns(self, caplog):
        metric = CachedMetric(euclidean(), maxsize=None)
        with caplog.at_level(logging.WARNING, logger="repro"):
            for i in range(10):
                metric.distance_keyed(i, [float(i)], i + 1, [float(i + 1)])
        assert metric.evictions == 0
        assert not [r for r in caplog.records if r.name == "repro.metrics"]
