"""Unit tests for the metric decorators (counting and caching)."""

import pytest

from repro.metrics.cached import CachedMetric, CountingMetric
from repro.metrics.vector import EuclideanMetric


class TestCountingMetric:
    def test_counts_calls(self):
        metric = CountingMetric(EuclideanMetric())
        metric.distance([0, 0], [1, 1])
        metric.distance([0, 0], [2, 2])
        assert metric.calls == 2

    def test_reset(self):
        metric = CountingMetric(EuclideanMetric())
        metric.distance([0], [1])
        metric.reset()
        assert metric.calls == 0

    def test_delegates_value(self):
        inner = EuclideanMetric()
        metric = CountingMetric(inner)
        assert metric.distance([0, 0], [3, 4]) == pytest.approx(inner.distance([0, 0], [3, 4]))

    def test_name_mentions_inner(self):
        assert "euclidean" in CountingMetric(EuclideanMetric()).name


class TestCachedMetric:
    def test_keyed_lookup_hits_cache(self):
        metric = CachedMetric(EuclideanMetric())
        first = metric.distance_keyed(1, [0, 0], 2, [1, 1])
        second = metric.distance_keyed(2, [1, 1], 1, [0, 0])
        assert first == pytest.approx(second)
        assert metric.hits == 1
        assert metric.misses == 1

    def test_same_key_distance_is_zero(self):
        metric = CachedMetric(EuclideanMetric())
        assert metric.distance_keyed(5, [1, 2], 5, [1, 2]) == 0.0

    def test_plain_distance_not_cached(self):
        metric = CachedMetric(EuclideanMetric())
        metric.distance([0, 0], [1, 1])
        assert len(metric) == 0

    def test_maxsize_respected(self):
        metric = CachedMetric(EuclideanMetric(), maxsize=1)
        metric.distance_keyed(1, [0], 2, [1])
        metric.distance_keyed(1, [0], 3, [2])
        assert len(metric) == 1

    def test_clear(self):
        metric = CachedMetric(EuclideanMetric())
        metric.distance_keyed(1, [0], 2, [1])
        metric.clear()
        assert len(metric) == 0
        assert metric.hits == 0
        assert metric.misses == 0
