"""Unit tests for the metric decorators (counting and caching)."""

import numpy as np
import pytest

from repro.metrics.base import CallableMetric, unwrap_metric
from repro.metrics.cached import CachedMetric, CountingMetric
from repro.metrics.vector import EuclideanMetric


class TestCountingMetric:
    def test_counts_calls(self):
        metric = CountingMetric(EuclideanMetric())
        metric.distance([0, 0], [1, 1])
        metric.distance([0, 0], [2, 2])
        assert metric.calls == 2

    def test_reset(self):
        metric = CountingMetric(EuclideanMetric())
        metric.distance([0], [1])
        metric.reset()
        assert metric.calls == 0

    def test_delegates_value(self):
        inner = EuclideanMetric()
        metric = CountingMetric(inner)
        assert metric.distance([0, 0], [3, 4]) == pytest.approx(inner.distance([0, 0], [3, 4]))

    def test_name_mentions_inner(self):
        assert "euclidean" in CountingMetric(EuclideanMetric()).name

    def test_pairwise_min_charged_like_pairwise(self):
        import numpy as np

        metric = CountingMetric(EuclideanMetric())
        X = np.array([[0.0, 0.0], [1.0, 1.0], [3.0, 0.0]])
        Y = np.array([[0.5, 0.0], [2.0, 2.0]])
        result = metric.pairwise_min(X, Y)
        assert metric.calls == 6
        assert np.array_equal(result, EuclideanMetric().pairwise(X, Y).min(axis=1))

    def test_charge_adds_nominal_calls(self):
        metric = CountingMetric(EuclideanMetric())
        metric.charge(41)
        assert metric.calls == 41


class TestCachedMetric:
    def test_keyed_lookup_hits_cache(self):
        metric = CachedMetric(EuclideanMetric())
        first = metric.distance_keyed(1, [0, 0], 2, [1, 1])
        second = metric.distance_keyed(2, [1, 1], 1, [0, 0])
        assert first == pytest.approx(second)
        assert metric.hits == 1
        assert metric.misses == 1

    def test_same_key_distance_is_zero(self):
        metric = CachedMetric(EuclideanMetric())
        assert metric.distance_keyed(5, [1, 2], 5, [1, 2]) == 0.0

    def test_plain_distance_not_cached(self):
        metric = CachedMetric(EuclideanMetric())
        metric.distance([0, 0], [1, 1])
        assert len(metric) == 0

    def test_maxsize_respected(self):
        metric = CachedMetric(EuclideanMetric(), maxsize=1)
        metric.distance_keyed(1, [0], 2, [1])
        metric.distance_keyed(1, [0], 3, [2])
        assert len(metric) == 1

    def test_lru_eviction_order(self):
        metric = CachedMetric(EuclideanMetric(), maxsize=2)
        metric.distance_keyed(1, [0.0], 2, [1.0])  # pair (1,2)
        metric.distance_keyed(1, [0.0], 3, [2.0])  # pair (1,3)
        metric.distance_keyed(1, [0.0], 2, [1.0])  # touch (1,2): (1,3) is now LRU
        metric.distance_keyed(1, [0.0], 4, [3.0])  # evicts (1,3)
        assert metric.evictions == 1
        hits_before = metric.hits
        metric.distance_keyed(2, [1.0], 1, [0.0])  # (1,2) survived the eviction
        assert metric.hits == hits_before + 1
        metric.distance_keyed(3, [2.0], 1, [0.0])  # (1,3) was evicted: a miss
        assert metric.misses == 3 + 1

    def test_new_entries_cached_after_capacity(self):
        # The bounded cache must keep admitting *new* pairs (evicting old
        # ones), not freeze its contents once full.
        metric = CachedMetric(EuclideanMetric(), maxsize=1)
        metric.distance_keyed(1, [0.0], 2, [1.0])
        metric.distance_keyed(1, [0.0], 3, [5.0])
        hits_before = metric.hits
        metric.distance_keyed(3, [5.0], 1, [0.0])
        assert metric.hits == hits_before + 1

    def test_stats_reporting(self):
        metric = CachedMetric(EuclideanMetric(), maxsize=8)
        metric.distance_keyed(1, [0.0], 2, [1.0])
        metric.distance_keyed(1, [0.0], 2, [1.0])
        stats = metric.stats()
        assert stats["size"] == 1
        assert stats["capacity"] == 8
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["evictions"] == 0
        assert stats["hit_rate"] == 0.5

    def test_unbounded_when_maxsize_none(self):
        metric = CachedMetric(EuclideanMetric(), maxsize=None)
        for key in range(2, 50):
            metric.distance_keyed(1, [0.0], key, [float(key)])
        assert len(metric) == 48
        assert metric.evictions == 0
        assert metric.stats()["capacity"] == float("inf")

    def test_default_capacity_is_bounded(self):
        assert CachedMetric(EuclideanMetric()).maxsize == CachedMetric.DEFAULT_MAXSIZE

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            CachedMetric(EuclideanMetric(), maxsize=0)

    def test_clear(self):
        metric = CachedMetric(EuclideanMetric())
        metric.distance_keyed(1, [0], 2, [1])
        metric.clear()
        assert len(metric) == 0
        assert metric.hits == 0
        assert metric.misses == 0
        assert metric.evictions == 0


class TestIndexLayerInteraction:
    """The decorators forward the index bound kernels without side effects.

    Regression guard: an :class:`~repro.index.screen.IndexedScreen` running
    over a cached/counting metric stack must not inflate any counter — box
    bounds are geometry, not distance evaluations, so they neither charge
    the counting metric nor register as cache hits/misses/evictions.
    """

    def test_supports_index_delegated(self):
        assert CountingMetric(EuclideanMetric()).supports_index is True
        assert CachedMetric(EuclideanMetric()).supports_index is True
        scalar = CallableMetric(lambda x, y: 0.0)
        assert CountingMetric(scalar).supports_index is False
        assert CachedMetric(scalar).supports_index is False

    def test_unwrap_reaches_the_innermost_metric(self):
        inner = EuclideanMetric()
        stacked = CountingMetric(CachedMetric(inner))
        assert unwrap_metric(stacked) is inner

    def test_counting_metric_does_not_charge_box_bounds(self):
        metric = CountingMetric(EuclideanMetric())
        Q = np.array([[0.0, 0.0], [5.0, 5.0]])
        lo, hi = np.array([1.0, 1.0]), np.array([2.0, 2.0])
        lower = metric.box_lower_bounds(Q, lo, hi)
        upper = metric.box_upper_bounds(Q, lo, hi)
        assert metric.calls == 0
        assert (lower <= upper).all()

    def test_cached_metric_box_bounds_do_not_touch_the_memo(self):
        metric = CachedMetric(EuclideanMetric())
        metric.distance_keyed(1, [0.0, 0.0], 2, [1.0, 1.0])
        before = metric.stats()
        Q = np.array([[0.0, 0.0], [5.0, 5.0]])
        metric.box_lower_bounds(Q, np.array([1.0, 1.0]), np.array([2.0, 2.0]))
        metric.box_upper_bounds(Q, np.array([1.0, 1.0]), np.array([2.0, 2.0]))
        stats = metric.stats()
        assert stats == before
        assert len(metric) == 1

    def test_indexed_screen_leaves_cached_stats_consistent(self):
        # End-to-end: drive an IndexedScreen over a counting(cached(...))
        # stack and verify the cache saw no activity while the counter saw
        # exactly the screen's leaf kernels.
        from repro.index import SpatialIndex

        cached = CachedMetric(EuclideanMetric())
        counting = CountingMetric(cached)
        rng = np.random.default_rng(9)
        matrix = rng.normal(size=(120, 3))
        tree = SpatialIndex(matrix, counting, kind="kd", leaf_size=8)
        Q = rng.normal(size=(6, 3))
        node_max = tree.node_maxes(rng.uniform(0.2, 0.8, size=120))
        screened = tree.screen_distances(Q, node_max, metric=counting)
        assert counting.calls > 0
        assert counting.calls <= Q.shape[0] * matrix.shape[0]
        assert int(np.isfinite(screened).sum()) <= counting.calls
        stats = cached.stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 0
        assert stats["evictions"] == 0
        assert len(cached) == 0
