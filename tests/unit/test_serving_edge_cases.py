"""Edge-of-the-protocol serving tests: raw sockets, bad framing, crashes.

The main server/manager suites drive the happy paths and the typed error
mapping through :class:`ServingClient`.  This module pins the layers
underneath: HTTP framing errors that never reach the router (malformed
request line, bad ``Content-Length``, oversized bodies), the
``Connection: close`` handshake, a corrupt on-disk checkpoint surfacing
as a 500, the in-process ``run_server`` SIGTERM drain, and the
:class:`ServerThread` lifecycle errors.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import socket
import threading

import numpy as np
import pytest

from repro.serving import (
    ManagerConfig,
    ServerThread,
    ServingClient,
    ServingRequestError,
    ServingServer,
    SessionManager,
    run_server,
)

K = 3
GROUPS = [0, 1]


def _config(tmp_path, **overrides):
    defaults = dict(state_dir=tmp_path / "state", max_live=4, max_batch=32,
                    flush_ms=5.0)
    defaults.update(overrides)
    return ManagerConfig(**defaults)


def _rows(count, offset=0):
    features = [[float(offset + i), float(i % 5)] for i in range(count)]
    groups = [(offset + i) % len(GROUPS) for i in range(count)]
    return features, groups


def _raw_exchange(port, payload):
    """Send raw bytes, read until the server closes; returns latin-1 text."""
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.settimeout(10)
        sock.sendall(payload)
        chunks = []
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
    return b"".join(chunks).decode("latin-1")


@pytest.fixture()
def server(tmp_path):
    with ServerThread(_config(tmp_path)) as thread:
        yield thread


@pytest.fixture()
def client(server):
    with ServingClient("127.0.0.1", server.port) as serving_client:
        yield serving_client


class TestHttpFraming:
    def test_malformed_request_line_gets_400(self, server):
        response = _raw_exchange(server.port, b"NONSENSE\r\n\r\n")
        assert response.startswith("HTTP/1.1 400 ")
        assert "malformed request line" in response

    def test_bad_content_length_gets_400(self, server):
        response = _raw_exchange(
            server.port,
            b"POST /sessions HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
        )
        assert response.startswith("HTTP/1.1 400 ")
        assert "bad Content-Length" in response

    def test_oversized_body_gets_413(self, server):
        response = _raw_exchange(
            server.port,
            b"POST /sessions HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n",
        )
        assert response.startswith("HTTP/1.1 413 ")

    def test_connection_close_header_is_honoured(self, server):
        response = _raw_exchange(
            server.port,
            b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        )
        assert response.startswith("HTTP/1.1 200 ")
        assert "Connection: close" in response
        assert '"status": "ok"' in response

    def test_non_object_json_body_gets_400(self, client):
        status, body = client.request("POST", "/sessions", None)
        del status, body  # warm the connection; the raw call is below
        payload = b"[1, 2, 3]"
        head = (
            f"POST /sessions HTTP/1.1\r\nContent-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        response = _raw_exchange(client._port, head + payload)
        assert "HTTP/1.1 400 " in response
        assert "must be an object" in response

    def test_method_not_allowed_on_session_resource(self, client):
        client.create_session(name="pinned", k=K, groups=GROUPS)
        status, body = client.request("PUT", "/sessions/pinned")
        assert status == 405
        assert "not allowed" in body["error"]

    def test_unconvertible_features_get_500_not_a_dead_connection(self, client):
        client.create_session(name="typed", k=K, groups=GROUPS)
        status, body = client.request(
            "POST", "/sessions/typed/offer",
            {"features": [["a", "b"], ["c", "d"]], "groups": [0, 1]},
        )
        assert status == 500
        assert "error" in body
        # Keep-alive survives the failed request.
        assert client.healthz()["status"] == "ok"


class TestCorruptCheckpoint:
    def test_restoring_a_corrupt_checkpoint_is_a_500(self, tmp_path):
        config = _config(tmp_path, max_live=1)
        with ServerThread(config) as thread:
            client = ServingClient("127.0.0.1", thread.port)
            client.create_session(name="victim", k=K, groups=GROUPS)
            features, groups = _rows(40)
            client.offer("victim", features, groups=groups,
                         uids=np.arange(40))
            assert client.solution("victim")["succeeded"] is True
            # A second session evicts the first to disk; corrupt the file.
            client.create_session(name="usurper", k=K, groups=GROUPS)
            ckpt = config.state_dir / "victim.ckpt"
            assert ckpt.exists()
            ckpt.write_bytes(b"not a pickle at all")
            with pytest.raises(ServingRequestError) as info:
                client.solution("victim")
            assert info.value.status == 500
            assert "checkpoint" in str(info.value)


class TestServerObject:
    def test_properties_and_serve_forever(self, tmp_path):
        async def scenario():
            manager = SessionManager(_config(tmp_path))
            server = ServingServer(manager)
            assert server.manager is manager
            assert server.host == "127.0.0.1"
            assert server.port == 0  # not bound yet: the requested port
            task = asyncio.create_task(server.serve_forever())
            while server.port == 0:  # serve_forever binds lazily
                await asyncio.sleep(0.01)
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
            await server.stop(drain=False)

        asyncio.run(scenario())


class TestRunServerInProcess:
    def test_sigterm_drains_and_returns_zero(self, tmp_path, capsys):
        config = _config(tmp_path)
        timer = threading.Timer(
            0.75, os.kill, args=(os.getpid(), signal.SIGTERM)
        )
        timer.start()
        try:
            code = run_server(config, host="127.0.0.1", port=0)
        finally:
            timer.cancel()
        assert code == 0
        output = capsys.readouterr().out
        assert "serving on http://127.0.0.1:" in output
        assert "drained 0 session(s)" in output


class TestServerThreadLifecycle:
    def test_not_running_accessors(self, tmp_path):
        thread = ServerThread(_config(tmp_path))
        with pytest.raises(RuntimeError):
            thread.port
        coro = asyncio.sleep(0)
        with pytest.raises(RuntimeError):
            thread.submit(coro)
        coro.close()
        assert thread.stop() == {}

    def test_running_accessors_and_double_start(self, tmp_path, server):
        assert server.base_url == f"http://127.0.0.1:{server.port}"
        assert server.manager.stats()["sessions"] == 0

        async def ping():
            return 7

        assert server.submit(ping()).result(timeout=10) == 7
        with pytest.raises(RuntimeError):
            server.start()

    def test_startup_failure_is_reported(self, tmp_path):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        try:
            taken_port = blocker.getsockname()[1]
            thread = ServerThread(_config(tmp_path), port=taken_port)
            with pytest.raises(RuntimeError, match="failed to start"):
                thread.start()
        finally:
            blocker.close()


class TestManagerSurface:
    def test_config_names_and_stale_checkpoint_cleanup(self, tmp_path):
        async def scenario():
            config = _config(tmp_path, max_live=1)
            manager = SessionManager(config)
            assert manager.config is config
            await manager.create(name="a", k=K, groups=GROUPS)
            await manager.create(name="b", k=K, groups=GROUPS)  # evicts a
            assert manager.names() == ["a", "b"]
            stale = config.state_dir / "a.ckpt"
            assert stale.exists()
            # Closing without checkpoint=True removes the eviction file.
            await manager.close("a", checkpoint=False)
            assert not stale.exists()
            await manager.shutdown()

        asyncio.run(scenario())
