"""Unit tests for the evaluation measures, harness plumbing, and reporting."""

import numpy as np
import pytest

from repro.datasets.synthetic import synthetic_blobs
from repro.evaluation.harness import (
    AlgorithmSpec,
    ExperimentConfig,
    default_algorithms,
    offline_algorithms,
    run_algorithm,
    streaming_algorithms,
)
from repro.evaluation.measures import (
    approximation_ratio_lower_bound,
    diversity,
    fairness_violation,
    optimum_upper_bound,
)
from repro.evaluation.reporting import format_table, records_to_rows, write_csv
from repro.fairness.constraints import FairnessConstraint, equal_representation
from repro.metrics.vector import EuclideanMetric
from repro.data.element import Element
from repro.utils.errors import InvalidParameterError


def _line_elements(count, group_period=2):
    return [
        Element(uid=i, vector=np.array([float(i), 0.0]), group=i % group_period)
        for i in range(count)
    ]


class TestMeasures:
    def test_diversity_matches_solution_module(self):
        elements = _line_elements(5)
        assert diversity(elements, EuclideanMetric()) == pytest.approx(1.0)

    def test_fairness_violation(self):
        constraint = FairnessConstraint({0: 1, 1: 1})
        assert fairness_violation(_line_elements(2), constraint) == 0
        assert fairness_violation(_line_elements(4), constraint) == 2

    def test_optimum_upper_bound_is_valid(self):
        elements = _line_elements(12)
        upper = optimum_upper_bound(elements, EuclideanMetric(), 4)
        from repro.baselines.exact import exact_dm

        _, optimum = exact_dm(elements, EuclideanMetric(), 4)
        assert upper >= optimum - 1e-9

    def test_approximation_ratio_lower_bound_in_unit_interval(self):
        elements = _line_elements(12)
        ratio = approximation_ratio_lower_bound(1.0, elements, EuclideanMetric(), 4)
        assert 0.0 < ratio <= 1.0


class TestHarness:
    def test_algorithm_suites(self):
        names = {spec.name for spec in default_algorithms(include_fair_gmm=True)}
        assert names == {"GMM", "FairSwap", "FairFlow", "FairGMM", "SFDM1", "SFDM2"}
        assert {spec.name for spec in streaming_algorithms()} == {"SFDM1", "SFDM2"}
        assert "FairGMM" not in {spec.name for spec in offline_algorithms()}

    def test_spec_supports_group_limits(self):
        sfdm1 = next(s for s in streaming_algorithms() if s.name == "SFDM1")
        assert sfdm1.supports(equal_representation(4, [0, 1]))
        assert not sfdm1.supports(equal_representation(6, [0, 1, 2]))

    def test_config_resolves_equal_constraint(self):
        dataset = synthetic_blobs(n=100, m=2, seed=0)
        config = ExperimentConfig(dataset=dataset, k=6, fairness="equal")
        constraint = config.resolve_constraint()
        assert constraint.total_size == 6
        assert constraint.num_groups == 2

    def test_config_resolves_proportional_constraint(self):
        dataset = synthetic_blobs(n=200, m=2, seed=0)
        config = ExperimentConfig(dataset=dataset, k=10, fairness="proportional")
        assert config.resolve_constraint().total_size == 10

    def test_config_rejects_unknown_fairness(self):
        dataset = synthetic_blobs(n=50, m=2, seed=0)
        with pytest.raises(InvalidParameterError):
            ExperimentConfig(dataset=dataset, k=4, fairness="lexicographic").resolve_constraint()

    def test_run_algorithm_produces_record(self):
        dataset = synthetic_blobs(n=150, m=2, seed=0)
        config = ExperimentConfig(dataset=dataset, k=6, repetitions=1)
        spec = next(s for s in streaming_algorithms() if s.name == "SFDM2")
        record = run_algorithm(spec, config)
        assert record.algorithm == "SFDM2"
        assert record.diversity > 0
        assert record.stored_elements > 0
        assert record.failures == 0

    def test_run_algorithm_rejects_unsupported(self):
        dataset = synthetic_blobs(n=100, m=3, seed=0)
        config = ExperimentConfig(dataset=dataset, k=6, repetitions=1)
        sfdm1 = next(s for s in streaming_algorithms() if s.name == "SFDM1")
        with pytest.raises(InvalidParameterError):
            run_algorithm(sfdm1, config)


class TestReporting:
    def test_format_table_alignment_and_title(self):
        rows = [{"a": 1, "b": 2.34567}, {"a": 10, "b": 0.5}]
        table = format_table(rows, title="demo")
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_records_to_rows_projection(self):
        dataset = synthetic_blobs(n=100, m=2, seed=0)
        config = ExperimentConfig(dataset=dataset, k=4, repetitions=1)
        record = run_algorithm(
            next(s for s in streaming_algorithms() if s.name == "SFDM2"), config
        )
        rows = records_to_rows([record], columns=["algorithm", "diversity"])
        assert list(rows[0].keys()) == ["algorithm", "diversity"]

    def test_write_csv(self, tmp_path):
        rows = [{"x": 1, "y": "a"}, {"x": 2, "y": "b"}]
        path = write_csv(rows, tmp_path / "out" / "table.csv")
        content = path.read_text().strip().splitlines()
        assert content[0] == "x,y"
        assert len(content) == 3

    def test_write_csv_empty(self, tmp_path):
        path = write_csv([], tmp_path / "empty.csv")
        assert path.read_text() == ""
