"""Unit tests for the shared-memory shard transport (repro.parallel.shm).

Covers the block lifecycle (publish → attach → close → unlink, with every
step idempotent and safe to repeat), the zero-copy guarantees of attached
shards, summary detachment, and the degrade-to-pickle fallback when
shared memory is unavailable or the publish fails.
"""

import logging
import pickle

import numpy as np
import pytest

from repro.data.element import Element
from repro.data.store import ElementStore
from repro.parallel import shm as shm_module
from repro.parallel.shm import (
    TRANSPORTS,
    ShardRef,
    StoreBlock,
    detach_elements,
    publish_shards,
    ship_shards,
    shm_available,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable on this platform"
)


def _elements(count, dim=2, base=0, period=2):
    return [
        Element(
            uid=base + i,
            vector=np.arange(dim, dtype=float) + float(base + i),
            group=(base + i) % period,
        )
        for i in range(count)
    ]


def _stores(*sizes):
    return [
        ElementStore.from_elements(_elements(size, base=100 * index))
        for index, size in enumerate(sizes)
    ]


class TestPublishAttach:
    def test_roundtrip_preserves_every_column(self):
        stores = _stores(5, 3)
        with publish_shards(stores) as block:
            assert len(block.refs) == 2
            for ref, store in zip(block.refs, stores):
                with ref.attach() as attached:
                    assert np.array_equal(attached.store.features, store.features)
                    assert np.array_equal(attached.store.groups, store.groups)
                    assert np.array_equal(attached.store.uids, store.uids)

    def test_attached_columns_are_views_not_copies(self):
        with publish_shards(_stores(8)) as block:
            with block.refs[0].attach() as attached:
                features = attached.store.features
                assert not features.flags.owndata
                assert not features.flags.writeable
                with pytest.raises((ValueError, RuntimeError)):
                    features[0, 0] = 99.0
                # Release the view before the mapping closes — holding one
                # across close() is the documented contract violation.
                del features

    def test_refs_pickle_small_and_survive_the_trip(self):
        store = ElementStore.from_elements(_elements(1000, dim=16))
        with publish_shards([store]) as block:
            ref = block.refs[0]
            payload = pickle.dumps(ref)
            # The descriptor must not scale with the shard: 1000x16 floats
            # are 128 KiB, the ref stays a few hundred bytes.
            assert len(payload) < 1024
            restored = pickle.loads(payload)
            with restored.attach() as attached:
                assert np.array_equal(attached.store.features, store.features)

    def test_labels_ride_along(self):
        elements = _elements(4)
        elements[1].label = "keep-me"
        store = ElementStore.from_elements(elements)
        with publish_shards([store]) as block:
            with block.refs[0].attach() as attached:
                assert attached.store.elements()[1].label == "keep-me"

    def test_empty_store_publishes(self):
        store = ElementStore.from_elements(_elements(3)).slice(0, 0)
        with publish_shards([store]) as block:
            with block.refs[0].attach() as attached:
                assert len(attached.store) == 0


class TestLifecycle:
    def test_close_and_unlink_are_idempotent(self):
        block = publish_shards(_stores(4))
        block.close()
        block.close()
        block.unlink()
        block.unlink()
        block.dispose()

    def test_dispose_removes_the_segment_name(self):
        from multiprocessing import shared_memory

        block = publish_shards(_stores(4))
        name = block.name
        block.dispose()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_attach_after_unlink_still_works_until_closed(self):
        # POSIX semantics: unlink removes the name, live mappings survive.
        block = publish_shards(_stores(4))
        attached = block.refs[0].attach()
        block.dispose()
        assert int(attached.store.uids[0]) == 0
        attached.close()

    def test_attached_shard_close_is_idempotent(self):
        with publish_shards(_stores(4)) as block:
            attached = block.refs[0].attach()
            attached.close()
            attached.close()
            assert attached.store is None

    def test_finalizer_disposes_abandoned_blocks(self):
        from multiprocessing import shared_memory

        block = publish_shards(_stores(4))
        name = block.name
        finalizer = block._finalizer
        del block
        finalizer()  # what gc/interpreter-exit would run
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestDetachElements:
    def test_detached_summaries_survive_block_disposal(self):
        block = publish_shards(_stores(6))
        attached = block.refs[0].attach()
        views = attached.store.elements()[:2]
        detached = detach_elements(views)
        expected = [np.array(view.vector, copy=True) for view in views]
        del views  # views must not outlive the mapping; the copies do
        attached.close()
        block.dispose()
        for element, vector in zip(detached, expected):
            assert element.store is None
            assert np.array_equal(element.vector, vector)
            assert element.vector.flags.owndata


class TestShipShards:
    def test_rejects_unknown_transport(self):
        with pytest.raises(ValueError, match="transport"):
            ship_shards([_elements(3)], transport="carrier-pigeon")

    def test_transport_constants_are_exhaustive(self):
        assert TRANSPORTS == ("auto", "shm", "pickle")

    def test_auto_prefers_shm_for_columnar_shards(self):
        payloads, block, used = ship_shards([_elements(5)])
        try:
            assert used == "shm"
            assert isinstance(payloads[0], ShardRef)
            assert isinstance(block, StoreBlock)
        finally:
            block.dispose()

    def test_pickle_payload_is_columnar_store(self):
        payloads, block, used = ship_shards([_elements(5)], transport="pickle")
        assert used == "pickle" and block is None
        assert isinstance(payloads[0], ElementStore)

    def test_unavailable_shared_memory_degrades_to_pickle(self, monkeypatch, caplog):
        monkeypatch.setattr(shm_module, "_shared_memory", None)
        with caplog.at_level(logging.WARNING, logger="repro"):
            payloads, block, used = ship_shards([_elements(5)], transport="shm")
        assert used == "pickle" and block is None
        assert isinstance(payloads[0], ElementStore)
        assert any("degraded to pickle" in record.message for record in caplog.records)

    def test_publish_failure_degrades_to_pickle(self, monkeypatch, caplog):
        def _boom(stores):
            raise OSError("no space left on /dev/shm")

        monkeypatch.setattr(shm_module, "publish_shards", _boom)
        with caplog.at_level(logging.WARNING, logger="repro"):
            payloads, block, used = ship_shards([_elements(5)], transport="shm")
        assert used == "pickle" and block is None
        assert any("publish failed" in record.message for record in caplog.records)

    def test_ragged_shards_fall_back_to_element_lists(self):
        ragged = [
            Element(uid=0, vector=np.array([1.0]), group=0),
            Element(uid=1, vector=np.array([1.0, 2.0]), group=1),
        ]
        payloads, block, used = ship_shards([ragged, _elements(3)])
        assert used == "pickle" and block is None
        assert isinstance(payloads[0], list)
        assert isinstance(payloads[1], ElementStore)

    def test_shm_payload_pickles_smaller_than_store_pickle(self):
        shard = _elements(2000, dim=8)
        payloads, block, used = ship_shards([shard])
        try:
            assert used == "shm"
            ref_bytes = len(pickle.dumps(payloads[0]))
            store_bytes = len(pickle.dumps(ElementStore.from_elements(shard)))
            assert ref_bytes < store_bytes / 100
        finally:
            block.dispose()
