"""Unit tests for the concrete vector metrics."""

import math

import numpy as np
import pytest

from repro.metrics.base import CallableMetric
from repro.metrics.vector import (
    AngularMetric,
    ChebyshevMetric,
    CosineDistanceMetric,
    EuclideanMetric,
    HammingMetric,
    ManhattanMetric,
    MinkowskiMetric,
    angular,
    chebyshev,
    cosine,
    euclidean,
    hamming,
    manhattan,
    minkowski,
)
from repro.utils.errors import InvalidParameterError


class TestEuclidean:
    def test_simple_distance(self):
        assert EuclideanMetric().distance([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_identity(self):
        assert EuclideanMetric().distance([1.5, -2.0], [1.5, -2.0]) == 0.0

    def test_symmetry(self):
        metric = EuclideanMetric()
        assert metric.distance([1, 2], [4, 6]) == pytest.approx(metric.distance([4, 6], [1, 2]))

    def test_accepts_numpy_arrays(self):
        assert EuclideanMetric().distance(np.array([0.0]), np.array([2.0])) == pytest.approx(2.0)

    def test_callable_alias(self):
        metric = EuclideanMetric()
        assert metric([0, 0], [1, 0]) == pytest.approx(1.0)


class TestManhattan:
    def test_simple_distance(self):
        assert ManhattanMetric().distance([0, 0], [3, 4]) == pytest.approx(7.0)

    def test_matches_hamming_on_binary_vectors(self):
        x = [1, 0, 1, 1, 0]
        y = [0, 0, 1, 0, 1]
        assert ManhattanMetric().distance(x, y) == HammingMetric().distance(x, y)


class TestChebyshev:
    def test_simple_distance(self):
        assert ChebyshevMetric().distance([0, 0], [3, 4]) == pytest.approx(4.0)

    def test_below_manhattan(self):
        x, y = [1, 2, 3], [4, 0, 8]
        assert ChebyshevMetric().distance(x, y) <= ManhattanMetric().distance(x, y)


class TestMinkowski:
    def test_p1_matches_manhattan(self):
        x, y = [1.0, -2.0, 3.0], [0.0, 4.0, 1.0]
        assert MinkowskiMetric(1).distance(x, y) == pytest.approx(
            ManhattanMetric().distance(x, y)
        )

    def test_p2_matches_euclidean(self):
        x, y = [1.0, -2.0, 3.0], [0.0, 4.0, 1.0]
        assert MinkowskiMetric(2).distance(x, y) == pytest.approx(
            EuclideanMetric().distance(x, y)
        )

    def test_invalid_order_rejected(self):
        with pytest.raises(InvalidParameterError):
            MinkowskiMetric(0.5)


class TestAngular:
    def test_orthogonal_vectors(self):
        assert AngularMetric().distance([1, 0], [0, 1]) == pytest.approx(math.pi / 2)

    def test_parallel_vectors(self):
        assert AngularMetric().distance([1, 1], [2, 2]) == pytest.approx(0.0, abs=1e-6)

    def test_opposite_vectors(self):
        assert AngularMetric().distance([1, 0], [-1, 0]) == pytest.approx(math.pi)

    def test_zero_vector_convention(self):
        metric = AngularMetric()
        assert metric.distance([0, 0], [0, 0]) == 0.0
        assert metric.distance([0, 0], [1, 0]) == pytest.approx(math.pi / 2)

    def test_bounded_by_pi_over_2_for_nonnegative_vectors(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            x = rng.uniform(0, 1, size=5)
            y = rng.uniform(0, 1, size=5)
            assert AngularMetric().distance(x, y) <= math.pi / 2 + 1e-9


class TestCosine:
    def test_identical_vectors(self):
        assert CosineDistanceMetric().distance([1, 2, 3], [2, 4, 6]) == pytest.approx(0.0, abs=1e-9)

    def test_orthogonal_vectors(self):
        assert CosineDistanceMetric().distance([1, 0], [0, 1]) == pytest.approx(1.0)

    def test_zero_vector_convention(self):
        assert CosineDistanceMetric().distance([0, 0], [1, 0]) == pytest.approx(1.0)


class TestHamming:
    def test_counts_differing_positions(self):
        assert HammingMetric().distance([1, 0, 1], [0, 0, 1]) == 1.0

    def test_works_on_strings(self):
        assert HammingMetric().distance(list("abc"), list("abd")) == 1.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(InvalidParameterError):
            HammingMetric().distance([1, 0], [1, 0, 1])


class TestFactories:
    @pytest.mark.parametrize(
        "factory,cls",
        [
            (euclidean, EuclideanMetric),
            (manhattan, ManhattanMetric),
            (chebyshev, ChebyshevMetric),
            (angular, AngularMetric),
            (cosine, CosineDistanceMetric),
            (hamming, HammingMetric),
        ],
    )
    def test_factory_returns_instance(self, factory, cls):
        assert isinstance(factory(), cls)

    def test_minkowski_factory(self):
        assert isinstance(minkowski(3), MinkowskiMetric)


class TestCallableMetric:
    def test_wraps_function(self):
        metric = CallableMetric(lambda x, y: abs(x - y), name="absdiff")
        assert metric.distance(3, 5) == 2
        assert metric.name == "absdiff"

    def test_rejects_non_callable(self):
        with pytest.raises(TypeError):
            CallableMetric("not callable")


class TestFusedScreenKernels:
    """The fused screen kernels must be bitwise equal to the full-matrix route."""

    METRICS = [
        EuclideanMetric(),
        ManhattanMetric(),
        ChebyshevMetric(),
        AngularMetric(),
    ]

    @pytest.mark.parametrize("metric", METRICS, ids=lambda m: m.name)
    def test_pairwise_min_bitwise_equal(self, metric):
        rng = np.random.default_rng(11)
        X = rng.normal(size=(40, 3))
        Y = rng.normal(size=(9, 3))
        assert np.array_equal(metric.pairwise_min(X, Y), metric.pairwise(X, Y).min(axis=1))

    def test_pairwise_min_high_dimensional(self):
        metric = EuclideanMetric()
        rng = np.random.default_rng(13)
        X = rng.normal(size=(8, 4))
        Y = rng.normal(size=(5, 4))
        assert np.array_equal(
            metric.pairwise_min(X, Y), metric.pairwise(X, Y).min(axis=1)
        )
