"""Unit tests for the execution backends' ``map_shards`` contract."""

import pytest

from repro.parallel.backends import (
    BACKENDS,
    Backend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    backend_names,
    resolve_backend,
)
from repro.utils.errors import InvalidParameterError


def _double(value):
    return value * 2


def _explode(value):
    raise RuntimeError(f"boom {value}")


ALL_BACKENDS = [SerialBackend(), ThreadBackend(), ProcessBackend()]


class TestMapShardsContract:
    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_results_keep_task_order(self, backend):
        assert backend.map_shards(_double, [3, 1, 2]) == [6, 2, 4]

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_empty_task_list(self, backend):
        assert backend.map_shards(_double, []) == []

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_task_errors_propagate(self, backend):
        with pytest.raises(RuntimeError, match="boom"):
            backend.map_shards(_explode, [1, 2])

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_single_task(self, backend):
        assert backend.map_shards(_double, [21]) == [42]


class TestWorkerCounts:
    def test_invalid_max_workers_rejected(self):
        with pytest.raises(InvalidParameterError):
            ThreadBackend(max_workers=0)
        with pytest.raises(InvalidParameterError):
            ProcessBackend(max_workers=-1)

    def test_thread_workers_bounded_by_tasks(self):
        assert ThreadBackend()._worker_count(3) == 3
        assert ThreadBackend(max_workers=2)._worker_count(8) == 2

    def test_process_workers_bounded_by_usable_cpus(self):
        from repro.parallel.backends import usable_cpus

        cap = usable_cpus()
        assert cap >= 1
        assert ProcessBackend()._worker_count(64) == min(64, cap)
        assert ProcessBackend(max_workers=1)._worker_count(8) == 1


class TestResolveBackend:
    def test_names_resolve_to_matching_instances(self):
        for name in backend_names():
            backend = resolve_backend(name)
            assert isinstance(backend, BACKENDS[name])
            assert backend.name == name

    def test_none_is_serial(self):
        assert isinstance(resolve_backend(None), SerialBackend)

    def test_instance_passthrough(self):
        backend = ThreadBackend(max_workers=2)
        assert resolve_backend(backend) is backend

    def test_unknown_name_rejected_eagerly(self):
        with pytest.raises(InvalidParameterError, match="unknown backend"):
            resolve_backend("gpu")

    def test_wrong_type_rejected(self):
        with pytest.raises(InvalidParameterError):
            resolve_backend(3)

    def test_registry_is_complete(self):
        assert backend_names() == ["serial", "thread", "process"]
        assert all(issubclass(cls, Backend) for cls in BACKENDS.values())

    def test_only_process_backend_requires_pickling(self):
        assert not SerialBackend().requires_pickling
        assert not ThreadBackend().requires_pickling
        assert ProcessBackend().requires_pickling
