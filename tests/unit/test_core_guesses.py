"""Unit tests for the guess ladder."""

import math

import pytest

from repro.core.guesses import GuessLadder
from repro.utils.errors import InvalidParameterError


class TestGuessLadder:
    def test_starts_at_d_min(self):
        ladder = GuessLadder(d_min=1.0, d_max=10.0, epsilon=0.1)
        assert ladder[0] == pytest.approx(1.0)

    def test_all_values_within_bounds(self):
        ladder = GuessLadder(d_min=0.5, d_max=20.0, epsilon=0.2)
        assert all(0.5 <= value <= 20.0 * (1 + 1e-9) for value in ladder)

    def test_geometric_progression(self):
        ladder = GuessLadder(d_min=1.0, d_max=100.0, epsilon=0.1)
        values = ladder.values
        for a, b in zip(values, values[1:]):
            assert b / a == pytest.approx(1.0 / 0.9)

    def test_covers_d_max_up_to_one_step(self):
        ladder = GuessLadder(d_min=1.0, d_max=57.3, epsilon=0.15)
        assert ladder.values[-1] * (1.0 / 0.85) > 57.3

    def test_length_within_theoretical_bound(self):
        for epsilon in (0.05, 0.1, 0.25):
            ladder = GuessLadder(d_min=0.01, d_max=1000.0, epsilon=epsilon)
            assert len(ladder) <= ladder.theoretical_length_bound()

    def test_smaller_epsilon_gives_longer_ladder(self):
        fine = GuessLadder(d_min=1.0, d_max=100.0, epsilon=0.05)
        coarse = GuessLadder(d_min=1.0, d_max=100.0, epsilon=0.25)
        assert len(fine) > len(coarse)

    def test_delta(self):
        assert GuessLadder(1.0, 8.0, 0.1).delta == pytest.approx(8.0)

    def test_equal_bounds_single_value(self):
        ladder = GuessLadder(d_min=2.0, d_max=2.0, epsilon=0.1)
        assert len(ladder) == 1
        assert ladder[0] == pytest.approx(2.0)

    def test_contains(self):
        ladder = GuessLadder(1.0, 10.0, 0.1)
        assert ladder[3] in ladder
        assert 123.456 not in ladder

    def test_predecessor(self):
        ladder = GuessLadder(1.0, 10.0, 0.1)
        assert ladder.predecessor(ladder[5]) == pytest.approx(ladder[5] * 0.9)

    def test_largest_at_most(self):
        ladder = GuessLadder(1.0, 10.0, 0.1)
        value = ladder.largest_at_most(5.0)
        assert value <= 5.0
        assert value * (1.0 / 0.9) > 5.0

    def test_largest_at_most_below_d_min_raises(self):
        with pytest.raises(InvalidParameterError):
            GuessLadder(1.0, 10.0, 0.1).largest_at_most(0.5)

    @pytest.mark.parametrize("d_min,d_max", [(-1.0, 5.0), (0.0, 5.0), (5.0, 1.0), (1.0, math.inf)])
    def test_invalid_bounds_rejected(self, d_min, d_max):
        with pytest.raises(InvalidParameterError):
            GuessLadder(d_min=d_min, d_max=d_max, epsilon=0.1)

    @pytest.mark.parametrize("epsilon", [0.0, 1.0, -0.1, 1.5])
    def test_invalid_epsilon_rejected(self, epsilon):
        with pytest.raises(InvalidParameterError):
            GuessLadder(1.0, 10.0, epsilon)
