"""HTTP front-end tests: a real server on a real socket, per test module.

:class:`repro.serving.ServerThread` runs the asyncio server on a
background thread; the stdlib-based :class:`repro.serving.ServingClient`
talks to it over TCP, so these tests cover the full wire path — request
parsing, routing, JSON bodies, status mapping, keep-alive — not mocks.
"""

import json

import numpy as np
import pytest

from repro.datasets.synthetic import synthetic_blobs
from repro.serving import (
    ManagerConfig,
    ServerThread,
    ServingClient,
    ServingRequestError,
)

K = 4


@pytest.fixture(scope="module")
def data():
    dataset = synthetic_blobs(n=240, m=2, seed=17)
    features = np.asarray([element.vector for element in dataset.elements], dtype=float)
    groups = [int(element.group) for element in dataset.elements]
    return features, groups


@pytest.fixture()
def server(tmp_path):
    config = ManagerConfig(
        state_dir=tmp_path / "state",
        max_live=2,
        max_batch=64,
        flush_ms=5.0,
        max_queue=200,
    )
    with ServerThread(config) as running:
        yield running


@pytest.fixture()
def client(server):
    with ServingClient("127.0.0.1", server.port) as connected:
        yield connected


def test_healthz_and_metrics(client):
    health = client.healthz()
    assert health["status"] == "ok" and health["sessions"] == 0
    metrics = client.metrics()
    assert metrics["repro.serving.sessions.active"] == 0
    assert "repro.serving.http.requests" in metrics


def test_full_session_roundtrip(client, data):
    features, groups = data
    name = client.create_session(k=K, groups=2, algorithm="SFDM2", name="round")
    receipt = client.offer(name, features[:100], groups=groups[:100])
    assert receipt["accepted"] == 100
    solution = client.solution(name)
    assert solution["succeeded"] is True
    assert len(solution["uids"]) == K
    assert solution["elements_processed"] == 100
    assert solution["is_fair"] is True
    assert solution["diversity"] > 0
    closed = client.close_session(name)
    assert closed["name"] == name
    health = client.healthz()
    assert health["sessions"] == 0


def test_eviction_over_http(client, server, data):
    features, groups = data
    for i in range(3):  # max_live=2: the third create evicts the LRU
        client.create_session(k=K, groups=2, name=f"e{i}")
    health = client.healthz()
    assert health["sessions"] == 3 and health["live"] == 2 and health["evicted"] == 1
    # the evicted session still answers (transparent restore)
    client.offer("e0", features[:80], groups=groups[:80])
    solution = client.solution("e0")
    assert solution["elements_processed"] == 80
    metrics = client.metrics()
    assert metrics["repro.serving.sessions.restored"] >= 1
    assert metrics["repro.serving.sessions.evicted"] >= 1


def test_status_codes(client, data):
    features, groups = data
    client.create_session(k=K, groups=2, name="codes")

    status, body = client.request("GET", "/sessions/ghost/solution")
    assert status == 404 and "ghost" in body["error"]

    status, body = client.request("POST", "/sessions", {"k": K, "groups": 2, "name": "codes"})
    assert status == 409 and "already exists" in body["error"]

    status, body = client.request("PUT", "/healthz")
    assert status == 405

    status, body = client.request("GET", "/nowhere")
    assert status == 404

    status, body = client.request("POST", "/sessions/codes/offer", {"rows": [[1.0]]})
    assert status == 400 and "features" in body["error"]

    status, body = client.request(
        "POST", "/sessions", {"k": K, "groups": 2, "name": "bad/name"}
    )
    assert status == 400

    status, body = client.request(
        "POST", "/sessions", {"k": K, "groups": 2, "algorithm": "NoSuchAlgo"}
    )
    assert status == 400


def test_backpressure_returns_429(client, data):
    features, groups = data
    # max_batch=64 would flush the queue, so go through in one giant offer
    client.create_session(k=K, groups=2, name="full")
    status, body = client.request(
        "POST",
        "/sessions/full/offer",
        {"features": features[:201].tolist(), "groups": groups[:201]},
    )
    assert status == 429
    assert "retry" in body["error"]


def test_malformed_json_is_400(client):
    status, body = client.request("POST", "/sessions", None)
    # empty body -> defaults; valid create with auto name
    assert status in (201, 400)
    conn = client._connection()
    conn.request(
        "POST",
        "/sessions",
        body=b"{not json",
        headers={"Content-Type": "application/json"},
    )
    response = conn.getresponse()
    payload = json.loads(response.read())
    assert response.status == 400 and "JSON" in payload["error"]


def test_offer_single_bare_row(client):
    client.create_session(k=K, groups=2, name="bare")
    receipt = client.offer("bare", [[0.5, 1.5]], groups=[0])
    assert receipt["accepted"] == 1


def test_delete_with_checkpoint_flag(client, server, data, tmp_path):
    features, groups = data
    client.create_session(k=K, groups=2, name="kept")
    client.offer("kept", features[:70], groups=groups[:70])
    closed = client.close_session("kept", checkpoint=True)
    assert closed["checkpoint"] is not None
    import repro

    assert repro.resume(closed["checkpoint"]).elements_offered == 70


def test_stop_with_drain_checkpoints_sessions(tmp_path, data):
    features, groups = data
    config = ManagerConfig(state_dir=tmp_path / "drain", max_batch=64, flush_ms=5.0)
    server = ServerThread(config).start()
    try:
        client = ServingClient("127.0.0.1", server.port)
        for i in range(2):
            client.create_session(k=K, groups=2, name=f"dr{i}")
            client.offer(f"dr{i}", features[:50], groups=groups[:50])
        client.close()
    finally:
        checkpoints = server.stop(drain=True)
    assert sorted(checkpoints) == ["dr0", "dr1"]
    import repro

    for path in checkpoints.values():
        assert repro.resume(path).elements_offered == 50


def test_client_raises_typed_error(client):
    with pytest.raises(ServingRequestError) as info:
        client.solution("missing")
    assert info.value.status == 404


def test_default_algorithm_used_when_unnamed(client):
    name = client.create_session(k=K, groups=2)
    solutionless = client.request("GET", f"/sessions/{name}/solution")
    # no offers yet: the engine reports an empty-stream conflict
    assert solutionless[0] == 409
