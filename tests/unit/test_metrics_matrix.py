"""Unit tests for the precomputed-matrix metric."""

import numpy as np
import pytest

from repro.metrics.matrix import PrecomputedMetric
from repro.utils.errors import InvalidParameterError


def _valid_matrix():
    return np.array(
        [
            [0.0, 1.0, 2.0],
            [1.0, 0.0, 1.5],
            [2.0, 1.5, 0.0],
        ]
    )


class TestPrecomputedMetric:
    def test_lookup(self):
        metric = PrecomputedMetric(_valid_matrix())
        assert metric.distance(0, 2) == pytest.approx(2.0)
        assert metric.distance(2, 0) == pytest.approx(2.0)

    def test_size(self):
        assert PrecomputedMetric(_valid_matrix()).size == 3

    def test_rejects_non_square(self):
        with pytest.raises(InvalidParameterError):
            PrecomputedMetric(np.zeros((2, 3)))

    def test_rejects_asymmetric(self):
        matrix = _valid_matrix()
        matrix[0, 1] = 9.0
        with pytest.raises(InvalidParameterError):
            PrecomputedMetric(matrix)

    def test_rejects_nonzero_diagonal(self):
        matrix = _valid_matrix()
        matrix[1, 1] = 0.5
        with pytest.raises(InvalidParameterError):
            PrecomputedMetric(matrix)

    def test_rejects_negative_entries(self):
        matrix = _valid_matrix()
        matrix[0, 1] = matrix[1, 0] = -1.0
        with pytest.raises(InvalidParameterError):
            PrecomputedMetric(matrix)

    def test_rejects_out_of_range_index(self):
        metric = PrecomputedMetric(_valid_matrix())
        with pytest.raises(InvalidParameterError):
            metric.distance(0, 5)

    def test_as_array_is_read_only(self):
        metric = PrecomputedMetric(_valid_matrix())
        view = metric.as_array()
        with pytest.raises(ValueError):
            view[0, 1] = 3.0
