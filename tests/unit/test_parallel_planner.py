"""Unit tests for the shard planner."""

import numpy as np
import pytest

from repro.parallel.planner import STRATEGIES, ShardPlanner
from repro.data.element import Element
from repro.streaming.stream import DataStream
from repro.utils.errors import EmptyStreamError, InvalidParameterError


def _elements(count, groups=(0, 1)):
    return [
        Element(uid=i, vector=np.array([float(i), 0.0]), group=groups[i % len(groups)])
        for i in range(count)
    ]


def _grouped(sizes):
    """Elements with ``sizes[g]`` members of group ``g``, interleaved by uid."""
    elements = []
    uid = 0
    for group, size in sizes.items():
        for _ in range(size):
            elements.append(Element(uid=uid, vector=np.array([float(uid), 0.0]), group=group))
            uid += 1
    return elements


class TestValidation:
    def test_non_positive_shards_rejected(self):
        with pytest.raises(InvalidParameterError):
            ShardPlanner(0)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(InvalidParameterError, match="strategy"):
            ShardPlanner(2, strategy="random")

    def test_empty_source_rejected(self):
        with pytest.raises(EmptyStreamError):
            ShardPlanner(2).plan([])


class TestContiguous:
    def test_partition_covers_input_in_order(self):
        elements = _elements(10)
        shards = ShardPlanner(3, strategy="contiguous").plan(elements)
        assert [e.uid for shard in shards for e in shard] == list(range(10))
        assert len(shards) == 3

    def test_tiny_input_degrades_to_singletons(self):
        shards = ShardPlanner(8, strategy="contiguous").plan(_elements(3))
        assert len(shards) == 3
        assert all(len(shard) == 1 for shard in shards)


class TestStratified:
    def test_partition_is_disjoint_and_covering(self):
        elements = _elements(40, groups=(0, 1, 2))
        shards = ShardPlanner(4, strategy="stratified").plan(elements)
        uids = sorted(e.uid for shard in shards for e in shard)
        assert uids == list(range(40))

    def test_large_groups_reach_every_shard(self):
        elements = _elements(40, groups=(0, 1))
        shards = ShardPlanner(4, strategy="stratified").plan(elements)
        for shard in shards:
            assert {e.group for e in shard} == {0, 1}

    def test_balanced_group_share_per_shard(self):
        elements = _grouped({0: 32, 1: 32})
        shards = ShardPlanner(4, strategy="stratified").plan(elements)
        for shard in shards:
            counts = {g: sum(1 for e in shard if e.group == g) for g in (0, 1)}
            assert counts == {0: 8, 1: 8}

    def test_small_group_spread_not_stranded(self):
        # 3 members of the protected group among 64 elements, 4 shards: the
        # round-robin dealing must place them on 3 distinct shards instead
        # of stranding all of them in one.
        elements = _grouped({0: 61, 1: 3})
        shards = ShardPlanner(4, strategy="stratified").plan(elements)
        shards_with_minority = [
            index
            for index, shard in enumerate(shards)
            if any(e.group == 1 for e in shard)
        ]
        assert len(shards_with_minority) == 3

    def test_tiny_groups_staggered_across_shards(self):
        # Four singleton groups, four shards: the per-group offset must
        # place each singleton on a different shard.
        elements = _grouped({0: 1, 1: 1, 2: 1, 3: 1})
        shards = ShardPlanner(4, strategy="stratified").plan(elements)
        assert len(shards) == 4
        assert sorted(shard[0].group for shard in shards) == [0, 1, 2, 3]

    def test_preserves_stream_order_within_shard(self):
        elements = _elements(24, groups=(0, 1))
        shards = ShardPlanner(3, strategy="stratified").plan(elements)
        for shard in shards:
            uids = [e.uid for e in shard]
            assert uids == sorted(uids)

    def test_no_empty_shards(self):
        shards = ShardPlanner(5, strategy="stratified").plan(_grouped({0: 2, 1: 1}))
        assert all(shard for shard in shards)


class TestStreamInput:
    def test_plan_applies_stream_permutation(self):
        elements = _elements(20)
        stream = DataStream(elements, shuffle_seed=5)
        planner = ShardPlanner(2, strategy="contiguous")
        shards = planner.plan(stream)
        flat = [e.uid for shard in shards for e in shard]
        assert flat == [e.uid for e in stream]
        assert flat != list(range(20))  # the permutation really applied

    def test_plan_is_deterministic_for_fixed_seed(self):
        elements = _elements(30, groups=(0, 1, 2))
        for strategy in STRATEGIES:
            planner = ShardPlanner(3, strategy=strategy)
            first = planner.plan(DataStream(elements, shuffle_seed=9))
            second = planner.plan(DataStream(elements, shuffle_seed=9))
            assert [[e.uid for e in s] for s in first] == [
                [e.uid for e in s] for s in second
            ]
