"""Unit tests for the composable-coreset utilities."""

import numpy as np
import pytest

from repro.core.coreset import (
    composable_fair_coreset,
    coreset_fair_diversity,
    gmm_coreset,
    partition_elements,
)
from repro.core.solution import diversity_of
from repro.baselines.exact import exact_fdm
from repro.fairness.constraints import FairnessConstraint, equal_representation
from repro.metrics.vector import EuclideanMetric
from repro.data.element import Element
from repro.utils.errors import InvalidParameterError

METRIC = EuclideanMetric()


def _elements(count, period=2, scale=1.0):
    return [
        Element(uid=i, vector=np.array([scale * i, 0.0]), group=i % period)
        for i in range(count)
    ]


class TestPartitionElements:
    def test_covers_all_elements(self):
        elements = _elements(10)
        parts = partition_elements(elements, 3)
        assert sum(len(part) for part in parts) == 10
        assert len(parts) == 3
        assert all(part for part in parts)

    def test_near_equal_sizes(self):
        parts = partition_elements(_elements(10), 4)
        sizes = [len(part) for part in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_more_parts_than_elements_caps_gracefully(self):
        parts = partition_elements(_elements(3), 5)
        assert len(parts) == 3
        assert all(len(part) == 1 for part in parts)
        assert sorted(e.uid for part in parts for e in part) == [0, 1, 2]

    def test_empty_input_yields_no_parts(self):
        assert partition_elements([], 4) == []

    def test_non_positive_parts_rejected(self):
        with pytest.raises(InvalidParameterError):
            partition_elements(_elements(3), 0)


class TestGmmCoreset:
    def test_size_bounded_by_k(self):
        summary = gmm_coreset(_elements(50, period=1), METRIC, 5)
        assert len(summary) == 5

    def test_per_group_keeps_all_groups(self):
        summary = gmm_coreset(_elements(50, period=3), METRIC, 4, per_group=True)
        assert {e.group for e in summary} == {0, 1, 2}

    def test_no_duplicate_uids(self):
        summary = gmm_coreset(_elements(30), METRIC, 10, per_group=True)
        uids = [e.uid for e in summary]
        assert len(uids) == len(set(uids))

    def test_start_index_is_deterministic_and_modular(self):
        elements = _elements(20, period=2)
        seeded = gmm_coreset(elements, METRIC, 4, per_group=True, start_index=7)
        again = gmm_coreset(elements, METRIC, 4, per_group=True, start_index=7)
        assert [e.uid for e in seeded] == [e.uid for e in again]
        # Any non-negative start is valid: it is reduced modulo the pool size.
        huge = gmm_coreset(elements, METRIC, 4, per_group=True, start_index=10_007)
        assert {e.group for e in huge} == {0, 1}

    def test_empty_input_yields_empty_summary(self):
        assert gmm_coreset([], METRIC, 3, per_group=True) == []


class TestComposableFairCoreset:
    def test_union_contains_every_group(self):
        elements = _elements(60, period=3)
        parts = partition_elements(elements, 4)
        coreset = composable_fair_coreset(parts, METRIC, 4)
        assert {e.group for e in coreset} == {0, 1, 2}
        assert len(coreset) < len(elements)

    def test_empty_parts_skipped(self):
        elements = _elements(10)
        coreset = composable_fair_coreset([elements, []], METRIC, 3)
        assert coreset


class TestCoresetFairDiversity:
    def test_returns_fair_solution(self):
        elements = _elements(80, period=2)
        constraint = equal_representation(6, [0, 1])
        solution = coreset_fair_diversity(elements, METRIC, constraint, num_parts=4)
        assert solution.is_fair
        assert solution.size == 6

    def test_competitive_with_exact_on_small_instance(self):
        elements = _elements(16, period=2)
        constraint = equal_representation(4, [0, 1])
        solution = coreset_fair_diversity(elements, METRIC, constraint, num_parts=2)
        _, optimum = exact_fdm(elements, METRIC, constraint)
        assert solution.diversity >= optimum / 4 - 1e-9

    def test_empty_input_rejected(self):
        constraint = equal_representation(4, [0, 1])
        with pytest.raises(InvalidParameterError):
            coreset_fair_diversity([], METRIC, constraint)

    def test_refinement_never_hurts(self):
        rng = np.random.default_rng(3)
        elements = [
            Element(uid=i, vector=rng.uniform(0, 100, size=2), group=i % 2) for i in range(60)
        ]
        constraint = equal_representation(6, [0, 1])
        plain = coreset_fair_diversity(
            elements, METRIC, constraint, num_parts=3, refine_with_swap=False
        )
        refined = coreset_fair_diversity(
            elements, METRIC, constraint, num_parts=3, refine_with_swap=True
        )
        assert refined.diversity >= plain.diversity - 1e-12
