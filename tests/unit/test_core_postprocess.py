"""Unit tests for the post-processing helpers (swapping, clustering, greedy fill)."""

import numpy as np
import pytest

from repro.core.postprocess import (
    balance_by_swapping,
    cluster_elements,
    distance_to_set,
    greedy_fair_fill,
)
from repro.core.solution import diversity_of
from repro.fairness.constraints import FairnessConstraint
from repro.metrics.vector import EuclideanMetric
from repro.data.element import Element


def _element(uid, x, group=0):
    return Element(uid=uid, vector=np.array([float(x), 0.0]), group=group)


class TestDistanceToSet:
    def test_minimum_distance(self):
        metric = EuclideanMetric()
        subset = [_element(0, 0.0), _element(1, 10.0)]
        assert distance_to_set(_element(2, 3.0), subset, metric) == pytest.approx(3.0)

    def test_empty_set_is_infinite(self):
        assert distance_to_set(_element(0, 0.0), [], EuclideanMetric()) == float("inf")


class TestBalanceBySwapping:
    def test_already_fair_left_untouched(self):
        metric = EuclideanMetric()
        constraint = FairnessConstraint({0: 1, 1: 1})
        blind = [_element(0, 0.0, 0), _element(1, 10.0, 1)]
        balanced = balance_by_swapping(blind, {0: [], 1: []}, constraint, metric)
        assert balanced == blind

    def test_balances_two_groups(self):
        metric = EuclideanMetric()
        constraint = FairnessConstraint({0: 2, 1: 2})
        # Blind candidate is all group 0; group 1's candidate has far points.
        blind = [_element(i, 10.0 * i, 0) for i in range(4)]
        group1 = [_element(10 + i, 100.0 + 10.0 * i, 1) for i in range(2)]
        balanced = balance_by_swapping(blind, {0: [], 1: group1}, constraint, metric)
        assert constraint.is_fair(balanced)
        assert len(balanced) == 4

    def test_keeps_size_k(self):
        metric = EuclideanMetric()
        constraint = FairnessConstraint({0: 1, 1: 3})
        blind = [_element(0, 0.0, 0), _element(1, 5.0, 0), _element(2, 10.0, 1), _element(3, 15.0, 1)]
        group1 = [_element(10, 20.0, 1), _element(11, 30.0, 1), _element(12, 40.0, 1)]
        balanced = balance_by_swapping(blind, {0: [], 1: group1}, constraint, metric)
        assert len(balanced) == 4
        assert constraint.is_fair(balanced)

    def test_diversity_at_least_half_mu_shape(self):
        """Reproduces the Lemma 2 setting: a mu-separated blind candidate plus a
        mu-separated group candidate yields a balanced set with div >= mu/2."""
        metric = EuclideanMetric()
        mu = 4.0
        constraint = FairnessConstraint({0: 2, 1: 2})
        blind = [
            _element(0, 0.0, 0),
            _element(1, 4.0, 0),
            _element(2, 8.0, 0),
            _element(3, 12.0, 1),
        ]
        group1 = [_element(10, 6.0, 1), _element(11, 30.0, 1)]
        balanced = balance_by_swapping(blind, {0: [], 1: group1}, constraint, metric)
        assert constraint.is_fair(balanced)
        assert diversity_of(balanced, metric) >= mu / 2


class TestClusterElements:
    def test_chain_merges_into_one_cluster(self):
        metric = EuclideanMetric()
        elements = [_element(i, 0.4 * i) for i in range(5)]
        clusters = cluster_elements(elements, threshold=0.5, metric=metric)
        assert len(clusters) == 1

    def test_far_points_stay_separate(self):
        metric = EuclideanMetric()
        elements = [_element(i, 10.0 * i) for i in range(4)]
        clusters = cluster_elements(elements, threshold=1.0, metric=metric)
        assert len(clusters) == 4

    def test_inter_cluster_distance_at_least_threshold(self):
        metric = EuclideanMetric()
        rng = np.random.default_rng(4)
        elements = [_element(i, rng.uniform(0, 20)) for i in range(30)]
        threshold = 1.5
        clusters = cluster_elements(elements, threshold, metric)
        for a in range(len(clusters)):
            for b in range(a + 1, len(clusters)):
                for x in clusters[a]:
                    for y in clusters[b]:
                        assert metric.distance(x.vector, y.vector) >= threshold

    def test_duplicate_uids_deduplicated(self):
        metric = EuclideanMetric()
        element = _element(0, 0.0)
        clusters = cluster_elements([element, element], threshold=1.0, metric=metric)
        assert sum(len(cluster) for cluster in clusters) == 1

    def test_clusters_partition_input(self):
        metric = EuclideanMetric()
        elements = [_element(i, 1.3 * i) for i in range(10)]
        clusters = cluster_elements(elements, threshold=2.0, metric=metric)
        uids = sorted(e.uid for cluster in clusters for e in cluster)
        assert uids == list(range(10))


class TestGreedyFairFill:
    def test_produces_fair_set_when_possible(self):
        metric = EuclideanMetric()
        constraint = FairnessConstraint({0: 2, 1: 2})
        pool = [_element(i, 3.0 * i, i % 2) for i in range(10)]
        result = greedy_fair_fill(pool, constraint, metric)
        assert constraint.is_fair(result)

    def test_respects_initial_selection(self):
        metric = EuclideanMetric()
        constraint = FairnessConstraint({0: 2, 1: 1})
        initial = [_element(100, 50.0, 0)]
        pool = [_element(i, 2.0 * i, i % 2) for i in range(8)]
        result = greedy_fair_fill(pool, constraint, metric, initial=initial)
        assert initial[0] in result
        assert constraint.is_fair(result)

    def test_partial_when_pool_lacks_a_group(self):
        metric = EuclideanMetric()
        constraint = FairnessConstraint({0: 1, 1: 2})
        pool = [_element(i, float(i), 0) for i in range(5)]
        result = greedy_fair_fill(pool, constraint, metric)
        assert len(result) < constraint.total_size
        assert constraint.is_independent(result)

    def test_greedy_prefers_far_elements(self):
        metric = EuclideanMetric()
        constraint = FairnessConstraint({0: 2})
        pool = [_element(0, 0.0, 0), _element(1, 1.0, 0), _element(2, 100.0, 0)]
        result = greedy_fair_fill(pool, constraint, metric)
        uids = {e.uid for e in result}
        assert uids == {0, 2}
