"""Unit tests for the observability layer: tracer, sinks, and metrics.

The tracing invariants the engine relies on: spans nest and close (even
under exceptions), sinks can be swapped mid-process, scoped tracing
restores the prior configuration, and everything is a cheap no-op while
the tracer is disabled.
"""

import json

import pytest

from repro import obs
from repro.obs import Counter, Gauge, Histogram, JsonlSink, MemorySink, MetricsRegistry, StderrSink
from repro.obs.trace import _NOOP_SPAN


@pytest.fixture(autouse=True)
def _pristine_tracer():
    """Every test starts and ends with the tracer disabled and sink-free."""
    obs.configure(sink=None, enabled=False)
    yield
    obs.configure(sink=None, enabled=False)


class TestSpanNesting:
    def test_disabled_span_is_shared_noop(self):
        assert not obs.enabled()
        span = obs.span("anything", key=1)
        assert span is _NOOP_SPAN
        assert obs.span("other") is span
        with span as inner:
            inner.set(ignored=True)  # must not raise

    def test_nested_spans_link_parent_ids_and_depths(self):
        with obs.tracing("memory") as sink:
            with obs.span("outer", a=1):
                with obs.span("inner"):
                    obs.event("tick", n=3)
        outer = sink.spans("outer")[0]
        inner = sink.spans("inner")[0]
        tick = sink.events("tick")[0]
        assert outer["parent_id"] is None and outer["depth"] == 0
        assert inner["parent_id"] == outer["span_id"] and inner["depth"] == 1
        assert tick["span_id"] == inner["span_id"] and tick["depth"] == 2
        # Children close before parents.
        assert sink.records.index(inner) < sink.records.index(outer)

    def test_span_set_attaches_late_attributes(self):
        with obs.tracing("memory") as sink:
            with obs.span("work", phase="start") as span:
                span.set(found=7)
        record = sink.spans("work")[0]
        assert record["attrs"] == {"phase": "start", "found": 7}

    def test_exception_closes_span_and_records_error(self):
        with obs.tracing("memory") as sink:
            with pytest.raises(ValueError):
                with obs.span("doomed"):
                    raise ValueError("boom")
            # The stack unwound: a new span is again a root.
            with obs.span("after"):
                pass
        doomed = sink.spans("doomed")[0]
        assert doomed["error"] == "ValueError"
        assert doomed["dur"] >= 0
        assert sink.spans("after")[0]["parent_id"] is None
        assert obs.get_tracer().current_span() is None

    def test_event_outside_any_span_has_null_span_id(self):
        with obs.tracing("memory") as sink:
            obs.event("lonely")
        record = sink.events("lonely")[0]
        assert record["span_id"] is None and record["depth"] == 0


class TestConfigurationAndSinks:
    def test_sink_swap_mid_process_splits_records(self):
        first, second = MemorySink(), MemorySink()
        obs.configure(sink=first)
        with obs.span("one"):
            pass
        obs.configure(sink=second)
        with obs.span("two"):
            pass
        assert [r["name"] for r in first.records] == ["one"]
        assert [r["name"] for r in second.records] == ["two"]

    def test_configure_none_removes_sinks_and_disables(self):
        obs.configure(sink=MemorySink())
        assert obs.enabled()
        obs.configure(sink=None)
        assert not obs.enabled()
        assert not obs.get_tracer()._sinks

    def test_tracing_scope_restores_prior_state(self):
        outer_sink = MemorySink()
        obs.configure(sink=outer_sink)
        with obs.tracing("memory") as inner_sink:
            with obs.span("scoped"):
                pass
        assert obs.enabled()
        assert obs.get_tracer()._sinks[0][0] is outer_sink
        assert inner_sink.spans("scoped")
        assert not outer_sink.records
        with obs.span("outer-again"):
            pass
        assert outer_sink.spans("outer-again")

    def test_tracing_scope_restores_disabled_state_after_exception(self):
        assert not obs.enabled()
        with pytest.raises(RuntimeError):
            with obs.tracing("memory"):
                assert obs.enabled()
                raise RuntimeError("bail")
        assert not obs.enabled()

    def test_jsonl_sink_writes_parseable_lines(self, tmp_path):
        path = tmp_path / "nested" / "trace.jsonl"
        with obs.tracing(str(path)):
            with obs.span("job", n=2):
                obs.event("mark")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert {r["name"] for r in lines} == {"job", "mark"}
        assert all("ts" in r and "mono" in r for r in lines)

    def test_stderr_sink_renders_indented_lines(self, capsys):
        obs.configure(sink=StderrSink())
        with obs.span("outer"):
            with obs.span("inner", level=3):
                obs.event("hit", kind="kd")
        err = capsys.readouterr().err
        assert "[repro.obs] outer" in err
        assert "[repro.obs]   inner" in err and "level=3" in err
        assert "· hit" in err and "kind=kd" in err

    def test_memory_sink_filters_and_clear(self):
        with obs.tracing("memory") as sink:
            with obs.span("a"):
                obs.event("e")
            with obs.span("b"):
                pass
            assert len(sink.spans()) == 2
            assert len(sink.spans("a")) == 1
            assert len(sink.events()) == 1
            sink.clear()
            assert sink.records == []

    def test_resolve_sink_ownership(self):
        mine = MemorySink()
        sink, owned = obs.resolve_sink(mine)
        assert sink is mine and owned is False
        for spec in ("stderr", "memory"):
            _, owned = obs.resolve_sink(spec)
            assert owned is True


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(2.5)
        for value in (1.0, 3.0):
            registry.histogram("h").observe(value)
        snapshot = registry.snapshot()
        assert snapshot["c"] == 5
        assert snapshot["g"] == 2.5
        assert snapshot["h"] == {"count": 2, "total": 4.0, "min": 1.0, "max": 3.0, "mean": 2.0}

    def test_counter_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_reset_empties_registry(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert len(registry) == 0 and registry.snapshot() == {}

    def test_empty_histogram_summary_is_zeros(self):
        assert Histogram("h").summary() == {
            "count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
        }

    def test_module_helpers_gate_on_enabled(self):
        obs.configure(reset_metrics=True)
        obs.count("repro.test.c", 3)
        obs.gauge("repro.test.g", 1.0)
        obs.observe("repro.test.h", 2.0)
        obs.gauges("repro.test", {"a": 1})
        assert obs.get_metrics().snapshot() == {}
        obs.configure(enabled=True)
        obs.count("repro.test.c", 3)
        obs.gauge("repro.test.g", 1.0)
        obs.observe("repro.test.h", 2.0)
        obs.gauges("repro.test", {"a": 1, "skip_me": "a string", "flag": True})
        snapshot = obs.get_metrics().snapshot()
        assert snapshot["repro.test.c"] == 3
        assert snapshot["repro.test.g"] == 1.0
        assert snapshot["repro.test.h"]["count"] == 1
        assert snapshot["repro.test.a"] == 1
        assert snapshot["repro.test.flag"] == 1
        assert "repro.test.skip_me" not in snapshot
        obs.configure(reset_metrics=True, enabled=False)

    def test_stream_stats_publish_feeds_registry_when_enabled(self):
        from repro.streaming.stats import StreamStats

        stats = StreamStats(
            elements_processed=10,
            stream_distance_computations=100,
            postprocess_distance_computations=20,
            stream_seconds=0.5,
        )
        stats.record_stored(7)
        obs.configure(reset_metrics=True)
        stats.publish("SFDM2")
        assert obs.get_metrics().snapshot() == {}
        obs.configure(enabled=True)
        stats.publish("SFDM2")
        snapshot = obs.get_metrics().snapshot()
        assert snapshot["repro.runs"] == 1
        assert snapshot["repro.runs.SFDM2"] == 1
        assert snapshot["repro.elements_processed"] == 10
        assert snapshot["repro.distance.stream"] == 100
        assert snapshot["repro.stored.final"] == 7
        assert snapshot["repro.seconds.stream"]["count"] == 1
        obs.configure(reset_metrics=True, enabled=False)
