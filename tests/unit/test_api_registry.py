"""Unit tests for the pluggable algorithm registry."""

import pytest

from repro.api.registry import (
    Capabilities,
    algorithm_names,
    algorithms,
    get_algorithm,
    has_algorithm,
    query,
    register_algorithm,
    unregister_algorithm,
)
from repro.utils.errors import InvalidParameterError

BUILTIN_NAMES = {
    "StreamingDM",
    "SFDM1",
    "SFDM2",
    "GMM",
    "FairSwap",
    "FairFlow",
    "FairGMM",
    "Coreset",
    "WindowFDM",
    "SlidingWindowFDM",
    "ParallelFDM",
}


class TestBuiltinCatalogue:
    def test_every_builtin_registered(self):
        assert BUILTIN_NAMES.issubset(set(algorithm_names()))

    def test_lookup_is_case_insensitive(self):
        assert get_algorithm("sfdm2").name == "SFDM2"
        assert get_algorithm("SFDM2").name == "SFDM2"
        assert get_algorithm("parallelfdm").name == "ParallelFDM"

    def test_aliases_resolve(self):
        assert get_algorithm("parallel").name == "ParallelFDM"
        assert get_algorithm("window").name == "WindowFDM"
        assert get_algorithm("algorithm1").name == "StreamingDM"

    def test_unknown_name_lists_available(self):
        with pytest.raises(InvalidParameterError, match="SFDM2"):
            get_algorithm("Magic")

    def test_has_algorithm(self):
        assert has_algorithm("sfdm1")
        assert not has_algorithm("Magic")

    def test_declared_capabilities(self):
        assert get_algorithm("SFDM1").capabilities.max_groups == 2
        assert get_algorithm("FairSwap").capabilities.max_groups == 2
        assert get_algorithm("FairGMM").capabilities.max_groups == 5
        assert get_algorithm("SFDM2").capabilities.max_groups is None
        assert get_algorithm("SFDM2").capabilities.sessions
        assert get_algorithm("SFDM2").capabilities.batch
        assert not get_algorithm("GMM").capabilities.constrained
        assert not get_algorithm("GMM").capabilities.streaming
        assert get_algorithm("ParallelFDM").capabilities.parallel
        assert get_algorithm("WindowFDM").capabilities.sessions

    def test_algorithms_snapshot(self):
        infos = {info.name: info for info in algorithms()}
        assert BUILTIN_NAMES.issubset(infos)
        assert infos["SFDM2"].kind == "streaming"
        assert infos["Coreset"].kind == "coreset"
        assert infos["SFDM2"].description

    def test_query_filters(self):
        streaming = {entry.name for entry in query(kind="streaming")}
        assert streaming == {"StreamingDM", "SFDM1", "SFDM2"}
        sessions = {entry.name for entry in query(sessions=True)}
        assert sessions == {
            "StreamingDM",
            "SFDM1",
            "SFDM2",
            "WindowFDM",
            "SlidingWindowFDM",
        }
        many_groups = {entry.name for entry in query(num_groups=5)}
        assert "SFDM1" not in many_groups and "FairSwap" not in many_groups
        assert "SFDM2" in many_groups


class TestOptionValidation:
    def test_unknown_option_rejected(self):
        with pytest.raises(InvalidParameterError, match="does not accept"):
            get_algorithm("SFDM2").validate_options({"shards": 4})

    def test_none_options_are_dropped(self):
        assert get_algorithm("SFDM2").validate_options({"batch_size": None}) == {}

    def test_value_validators_run_eagerly(self):
        with pytest.raises(InvalidParameterError):
            get_algorithm("SFDM2").validate_options({"batch_size": 0})
        with pytest.raises(InvalidParameterError):
            get_algorithm("ParallelFDM").validate_options({"backend": "gpu"})
        with pytest.raises(InvalidParameterError):
            get_algorithm("WindowFDM").validate_options({"window": 0})


class TestPluginRegistration:
    def test_register_and_unregister(self):
        @register_algorithm(
            "TestPlugin",
            kind="offline",
            aliases=("test-plugin",),
            streaming=False,
            constrained=False,
        )
        def _runner(context):
            """A do-nothing plugin."""
            return None

        try:
            entry = get_algorithm("test-plugin")
            assert entry.name == "TestPlugin"
            assert entry.description == "A do-nothing plugin."
        finally:
            unregister_algorithm("TestPlugin")
        assert not has_algorithm("TestPlugin")

    def test_duplicate_name_rejected(self):
        with pytest.raises(InvalidParameterError, match="already registered"):

            @register_algorithm("SFDM2", kind="streaming", streaming=True)
            def _shadow(context):
                return None

    def test_replace_shadows_and_restores(self):
        original = get_algorithm("GMM")

        @register_algorithm(
            "GMM",
            kind="offline",
            aliases=("gmm",),
            streaming=False,
            constrained=False,
            replace=True,
        )
        def _shadow(context):
            return "shadowed"

        try:
            assert get_algorithm("GMM").run(None) == "shadowed"
        finally:
            from repro.api.registry import _register

            _register(original, replace=True)
        assert get_algorithm("GMM") is original

    def test_replace_cannot_hijack_another_entry_name(self):
        # replace=True shadows the *same* name only; colliding with a
        # different entry's name or alias must still fail loudly.
        with pytest.raises(InvalidParameterError, match="already registered"):

            @register_algorithm(
                "Hijacker",
                kind="offline",
                aliases=("sfdm2",),
                streaming=False,
                replace=True,
            )
            def _hijack(context):
                return None

        assert get_algorithm("sfdm2").name == "SFDM2"
        assert not has_algorithm("Hijacker")

    def test_capabilities_object_and_kwargs_conflict(self):
        with pytest.raises(InvalidParameterError, match="not both"):
            register_algorithm(
                "Conflicting",
                kind="offline",
                capabilities=Capabilities(kind="offline", streaming=False),
                streaming=False,
            )
