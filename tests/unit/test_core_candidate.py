"""Unit tests for the greedy candidate S_mu."""

import numpy as np
import pytest

from repro.core.candidate import Candidate
from repro.metrics.vector import EuclideanMetric
from repro.data.element import Element


def _element(uid, x, group=0):
    return Element(uid=uid, vector=np.array([float(x), 0.0]), group=group)


class TestCandidate:
    def test_accepts_first_element(self):
        candidate = Candidate(mu=1.0, capacity=3, metric=EuclideanMetric())
        assert candidate.offer(_element(0, 0.0))
        assert len(candidate) == 1

    def test_rejects_close_element(self):
        candidate = Candidate(mu=1.0, capacity=3, metric=EuclideanMetric())
        candidate.offer(_element(0, 0.0))
        assert not candidate.offer(_element(1, 0.5))
        assert len(candidate) == 1

    def test_accepts_element_at_exact_threshold(self):
        candidate = Candidate(mu=1.0, capacity=3, metric=EuclideanMetric())
        candidate.offer(_element(0, 0.0))
        assert candidate.offer(_element(1, 1.0))

    def test_respects_capacity(self):
        candidate = Candidate(mu=1.0, capacity=2, metric=EuclideanMetric())
        candidate.offer(_element(0, 0.0))
        candidate.offer(_element(1, 10.0))
        assert not candidate.offer(_element(2, 20.0))
        assert candidate.is_full

    def test_group_restriction(self):
        candidate = Candidate(mu=1.0, capacity=3, metric=EuclideanMetric(), group=1)
        assert not candidate.offer(_element(0, 0.0, group=0))
        assert candidate.offer(_element(1, 0.0, group=1))

    def test_min_pairwise_distance_invariant(self):
        candidate = Candidate(mu=2.0, capacity=10, metric=EuclideanMetric())
        rng = np.random.default_rng(0)
        for uid in range(200):
            candidate.offer(_element(uid, rng.uniform(0, 30)))
        assert candidate.diversity() >= 2.0

    def test_distance_to_empty_is_infinite(self):
        candidate = Candidate(mu=1.0, capacity=2, metric=EuclideanMetric())
        assert candidate.distance_to(_element(0, 0.0)) == float("inf")

    def test_diversity_of_singleton_is_infinite(self):
        candidate = Candidate(mu=1.0, capacity=2, metric=EuclideanMetric())
        candidate.offer(_element(0, 0.0))
        assert candidate.diversity() == float("inf")

    def test_contains_and_iter(self):
        candidate = Candidate(mu=1.0, capacity=3, metric=EuclideanMetric())
        element = _element(0, 0.0)
        candidate.offer(element)
        assert element in candidate
        assert list(candidate) == [element]

    def test_count_group(self):
        candidate = Candidate(mu=1.0, capacity=4, metric=EuclideanMetric())
        candidate.offer(_element(0, 0.0, group=0))
        candidate.offer(_element(1, 5.0, group=1))
        candidate.offer(_element(2, 10.0, group=1))
        assert candidate.count_group(1) == 2
        assert candidate.count_group(0) == 1

    def test_elements_returns_copy(self):
        candidate = Candidate(mu=1.0, capacity=2, metric=EuclideanMetric())
        candidate.offer(_element(0, 0.0))
        elements = candidate.elements
        elements.append(_element(99, 99.0))
        assert len(candidate) == 1
