"""Unit tests for the Element value object."""

import pytest
import numpy as np

from repro.data.element import Element


class TestElement:
    def test_identity_by_uid(self):
        a = Element(uid=1, vector=np.array([0.0]), group=0)
        b = Element(uid=1, vector=np.array([99.0]), group=1)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_by_uid(self):
        a = Element(uid=1, vector=np.array([0.0]))
        b = Element(uid=2, vector=np.array([0.0]))
        assert a != b

    def test_not_equal_to_other_types(self):
        assert Element(uid=1, vector=[0.0]) != "element"

    def test_usable_in_sets(self):
        elements = {Element(uid=i % 3, vector=[float(i)]) for i in range(9)}
        assert len(elements) == 3

    def test_list_vector_converted_to_array(self):
        element = Element(uid=0, vector=[1.0, 2.0])
        assert isinstance(element.vector, np.ndarray)

    def test_ordering_by_uid(self):
        elements = [Element(uid=i, vector=[0.0]) for i in (3, 1, 2)]
        assert [e.uid for e in sorted(elements)] == [1, 2, 3]

    def test_group_defaults_to_zero(self):
        assert Element(uid=0, vector=[0.0]).group == 0

    def test_label_in_repr(self):
        element = Element(uid=0, vector=[0.0], group=1, label="female")
        assert "female" in repr(element)


class TestDeprecatedImportPath:
    """`repro.streaming.element` is a warning shim over `repro.data.element`."""

    def test_module_attribute_emits_deprecation_warning(self):
        import repro.streaming.element as legacy

        with pytest.warns(DeprecationWarning, match="repro.data"):
            legacy_class = legacy.Element
        assert legacy_class is Element

    def test_from_import_warns_and_behaves_identically(self):
        with pytest.warns(DeprecationWarning):
            from repro.streaming.element import Element as LegacyElement

        assert LegacyElement is Element
        element = LegacyElement(uid=3, vector=np.array([1.0, 2.0]), group=1)
        assert element == Element(uid=3, vector=np.array([1.0, 2.0]), group=1)

    def test_other_attributes_raise_attribute_error(self):
        import repro.streaming.element as legacy

        with pytest.raises(AttributeError):
            legacy.NotAThing
