"""Unit tests for the Element value object."""

import numpy as np

from repro.streaming.element import Element


class TestElement:
    def test_identity_by_uid(self):
        a = Element(uid=1, vector=np.array([0.0]), group=0)
        b = Element(uid=1, vector=np.array([99.0]), group=1)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_by_uid(self):
        a = Element(uid=1, vector=np.array([0.0]))
        b = Element(uid=2, vector=np.array([0.0]))
        assert a != b

    def test_not_equal_to_other_types(self):
        assert Element(uid=1, vector=[0.0]) != "element"

    def test_usable_in_sets(self):
        elements = {Element(uid=i % 3, vector=[float(i)]) for i in range(9)}
        assert len(elements) == 3

    def test_list_vector_converted_to_array(self):
        element = Element(uid=0, vector=[1.0, 2.0])
        assert isinstance(element.vector, np.ndarray)

    def test_ordering_by_uid(self):
        elements = [Element(uid=i, vector=[0.0]) for i in (3, 1, 2)]
        assert [e.uid for e in sorted(elements)] == [1, 2, 3]

    def test_group_defaults_to_zero(self):
        assert Element(uid=0, vector=[0.0]).group == 0

    def test_label_in_repr(self):
        element = Element(uid=0, vector=[0.0], group=1, label="female")
        assert "female" in repr(element)
