"""Unit tests for the offline baselines (GMM, max-sum, FairSwap, FairFlow, FairGMM, exact)."""

import numpy as np
import pytest

from repro.baselines.exact import exact_dm, exact_fdm
from repro.baselines.fair_flow import fair_flow
from repro.baselines.fair_gmm import fair_gmm
from repro.baselines.fair_swap import fair_swap
from repro.baselines.gmm import gmm, gmm_elements
from repro.baselines.max_sum import max_sum_greedy
from repro.core.solution import diversity_of
from repro.data.store import ElementStore
from repro.fairness.constraints import FairnessConstraint, equal_representation
from repro.metrics.base import CallableMetric
from repro.metrics.vector import EuclideanMetric
from repro.data.element import Element
from repro.utils.errors import InfeasibleConstraintError, InvalidParameterError


def _line_elements(count, group_period=2):
    return [
        Element(uid=i, vector=np.array([float(i), 0.0]), group=i % group_period)
        for i in range(count)
    ]


METRIC = EuclideanMetric()


class TestGMM:
    def test_selects_k_elements(self):
        assert len(gmm_elements(_line_elements(20), METRIC, 5)) == 5

    def test_line_selection_is_spread_out(self):
        selected = gmm_elements(_line_elements(11), METRIC, 3)
        xs = sorted(e.vector[0] for e in selected)
        assert xs[0] == 0.0
        assert xs[-1] == 10.0

    def test_half_approximation_on_small_instances(self):
        elements = _line_elements(12)
        _, optimum = exact_dm(elements, METRIC, 4)
        achieved = diversity_of(gmm_elements(elements, METRIC, 4), METRIC)
        assert achieved >= optimum / 2 - 1e-9

    def test_k_larger_than_pool(self):
        assert len(gmm_elements(_line_elements(3), METRIC, 10)) == 3

    def test_group_restriction(self):
        selected = gmm_elements(_line_elements(10), METRIC, 3, restrict_group=1)
        assert all(e.group == 1 for e in selected)

    def test_invalid_start_index(self):
        with pytest.raises(InvalidParameterError):
            gmm_elements(_line_elements(5), METRIC, 2, start_index=9)

    def test_empty_pool(self):
        assert gmm_elements([], METRIC, 3) == []

    def test_run_result_accounting(self):
        result = gmm(_line_elements(10), METRIC, 3)
        assert result.algorithm == "GMM"
        assert result.solution.size == 3
        assert result.stats.peak_stored_elements == 10
        assert result.stats.stream_distance_computations > 0


class TestMaxSumGreedy:
    def test_selects_k_elements(self):
        result = max_sum_greedy(_line_elements(10), METRIC, 4)
        assert result.solution.size == 4

    def test_seeds_with_farthest_pair(self):
        result = max_sum_greedy(_line_elements(10), METRIC, 2)
        xs = sorted(e.vector[0] for e in result.solution.elements)
        assert xs == [0.0, 9.0]

    def test_max_sum_can_cluster_selection(self):
        """Max-sum tends to pick extreme points; its max-min diversity is
        no better than GMM's on a line (Figure 1's qualitative point)."""
        elements = _line_elements(21)
        sum_result = max_sum_greedy(elements, METRIC, 6)
        min_result = gmm(elements, METRIC, 6)
        assert sum_result.solution.diversity <= min_result.solution.diversity + 1e-9

    @pytest.mark.parametrize("n,k", [(1, 1), (1, 3), (2, 1), (7, 1), (25, 6), (31, 12)])
    def test_batched_path_matches_scalar_path(self, n, k):
        """The batched kernels select the same elements on the same counts.

        The scalar reference forces the element-at-a-time path via a
        ``CallableMetric`` wrapping the same distance function; selections
        and distance accounting must be identical, including the ``k=1``
        and single-element edges.
        """
        rng = np.random.default_rng(100 * n + k)
        elements = [
            Element(uid=i, vector=rng.normal(size=3), group=i % 2) for i in range(n)
        ]
        scalar_metric = CallableMetric(METRIC.distance, name="scalar-euclidean")
        batched = max_sum_greedy(elements, METRIC, k)
        scalar = max_sum_greedy(elements, scalar_metric, k)
        assert batched.solution.uids == scalar.solution.uids
        assert (
            batched.stats.stream_distance_computations
            == scalar.stats.stream_distance_computations
        )

    def test_single_element_pool(self):
        result = max_sum_greedy(_line_elements(1), METRIC, 4)
        assert result.solution.uids == [0]
        assert result.stats.stream_distance_computations == 0

    def test_k_one_selects_farthest_pair_member(self):
        """k=1 keeps the first element of the farthest pair, as before."""
        result = max_sum_greedy(_line_elements(6), METRIC, 1)
        assert result.solution.uids == [0]
        assert result.stats.stream_distance_computations == 15


class TestFairSwap:
    def test_fair_solution_two_groups(self):
        elements = _line_elements(20)
        constraint = equal_representation(6, [0, 1])
        result = fair_swap(elements, METRIC, constraint)
        assert result.solution.is_fair
        assert result.solution.size == 6

    def test_rejects_more_than_two_groups(self):
        constraint = FairnessConstraint({0: 1, 1: 1, 2: 1})
        with pytest.raises(InvalidParameterError):
            fair_swap(_line_elements(9, group_period=3), METRIC, constraint)

    def test_rejects_infeasible_quota(self):
        constraint = FairnessConstraint({0: 5, 1: 5})
        with pytest.raises(InfeasibleConstraintError):
            fair_swap(_line_elements(6), METRIC, constraint)

    def test_quarter_approximation_on_small_instances(self):
        elements = _line_elements(14)
        constraint = equal_representation(4, [0, 1])
        _, optimum = exact_fdm(elements, METRIC, constraint)
        result = fair_swap(elements, METRIC, constraint)
        assert result.diversity >= optimum / 4 - 1e-9


class TestFairFlow:
    def test_fair_solution_many_groups(self):
        elements = _line_elements(30, group_period=5)
        constraint = equal_representation(10, list(range(5)))
        result = fair_flow(elements, METRIC, constraint)
        assert result.solution.is_fair
        assert result.solution.size == 10

    def test_two_group_case(self):
        elements = _line_elements(20)
        constraint = equal_representation(6, [0, 1])
        result = fair_flow(elements, METRIC, constraint)
        assert result.solution.is_fair

    def test_rejects_infeasible_quota(self):
        constraint = FairnessConstraint({0: 10, 1: 10})
        with pytest.raises(InfeasibleConstraintError):
            fair_flow(_line_elements(10), METRIC, constraint)

    def test_flow_value_recorded(self):
        elements = _line_elements(20)
        constraint = equal_representation(4, [0, 1])
        result = fair_flow(elements, METRIC, constraint)
        assert "flow_value" in result.stats.extra


class TestFairGMM:
    def test_fair_and_high_quality_on_small_instance(self):
        elements = _line_elements(14)
        constraint = equal_representation(4, [0, 1])
        result = fair_gmm(elements, METRIC, constraint)
        assert result.solution.is_fair
        _, optimum = exact_fdm(elements, METRIC, constraint)
        assert result.diversity >= optimum / 5 - 1e-9

    def test_combination_cap_enforced(self):
        elements = _line_elements(60, group_period=3)
        constraint = equal_representation(30, [0, 1, 2])
        with pytest.raises(InvalidParameterError):
            fair_gmm(elements, METRIC, constraint, max_combinations=10)

    def test_rejects_infeasible_quota(self):
        constraint = FairnessConstraint({0: 6, 1: 6})
        with pytest.raises(InfeasibleConstraintError):
            fair_gmm(_line_elements(8), METRIC, constraint)


class TestExactSolvers:
    def test_exact_dm_on_line(self):
        elements = _line_elements(5)
        subset, optimum = exact_dm(elements, METRIC, 3)
        assert optimum == pytest.approx(2.0)
        assert len(subset) == 3

    def test_exact_dm_limits(self):
        with pytest.raises(InvalidParameterError):
            exact_dm(_line_elements(30), METRIC, 3)
        with pytest.raises(InvalidParameterError):
            exact_dm(_line_elements(3), METRIC, 5)

    def test_exact_fdm_respects_fairness(self):
        elements = _line_elements(8)
        constraint = equal_representation(4, [0, 1])
        subset, optimum = exact_fdm(elements, METRIC, constraint)
        assert constraint.is_fair(subset)
        assert optimum <= exact_dm(elements, METRIC, 4)[1] + 1e-12

    def test_exact_fdm_infeasible(self):
        constraint = FairnessConstraint({0: 4, 1: 4})
        with pytest.raises(InfeasibleConstraintError):
            exact_fdm(_line_elements(6), METRIC, constraint)

    def test_exact_dm_tie_break_is_order_independent(self):
        """Among equally diverse optima the smallest uid tuple wins,
        whatever order the elements arrive in."""
        # Four corners of a square: the two diagonal pairs tie at 2*sqrt(2);
        # {0, 2} is the lexicographically smaller of the tied optima.
        corners = [
            Element(uid=0, vector=np.array([0.0, 0.0]), group=0),
            Element(uid=1, vector=np.array([2.0, 0.0]), group=1),
            Element(uid=2, vector=np.array([2.0, 2.0]), group=0),
            Element(uid=3, vector=np.array([0.0, 2.0]), group=1),
        ]
        rng = np.random.default_rng(5)
        for _ in range(6):
            shuffled = list(corners)
            rng.shuffle(shuffled)
            subset, optimum = exact_dm(shuffled, METRIC, 2)
            assert optimum == pytest.approx(2.0 * np.sqrt(2.0))
            assert sorted(e.uid for e in subset) == [0, 2]

    def test_exact_fdm_tie_break_is_order_independent(self):
        corners = [
            Element(uid=0, vector=np.array([0.0, 0.0]), group=0),
            Element(uid=1, vector=np.array([2.0, 0.0]), group=1),
            Element(uid=2, vector=np.array([2.0, 2.0]), group=0),
            Element(uid=3, vector=np.array([0.0, 2.0]), group=1),
        ]
        constraint = FairnessConstraint({0: 1, 1: 1})
        rng = np.random.default_rng(9)
        for _ in range(6):
            shuffled = list(corners)
            rng.shuffle(shuffled)
            subset, optimum = exact_fdm(shuffled, METRIC, constraint)
            assert optimum == pytest.approx(2.0)
            assert sorted(e.uid for e in subset) == [0, 1]

    def test_exact_solvers_accept_element_stores(self):
        elements = _line_elements(8)
        store = ElementStore.from_elements(elements)
        constraint = equal_representation(4, [0, 1])
        assert exact_dm(store, METRIC, 3) == exact_dm(elements, METRIC, 3)
        assert exact_fdm(store, METRIC, constraint) == exact_fdm(
            elements, METRIC, constraint
        )
