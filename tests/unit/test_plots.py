"""Unit tests for the ASCII chart helpers."""

import pytest

from repro.evaluation.plots import bar_chart, series_chart, sparkline
from repro.utils.errors import InvalidParameterError


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_uses_increasing_levels(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] < line[-1]

    def test_constant_series_is_flat(self):
        line = sparkline([5, 5, 5])
        assert len(set(line)) == 1

    def test_extremes_hit_lowest_and_highest_glyphs(self):
        line = sparkline([0.0, 100.0])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            sparkline([])


class TestBarChart:
    def test_contains_all_labels_and_values(self):
        chart = bar_chart({"SFDM2": 2.5, "FairFlow": 1.0})
        assert "SFDM2" in chart and "FairFlow" in chart
        assert "2.500" in chart and "1.000" in chart

    def test_largest_value_gets_longest_bar(self):
        chart = bar_chart({"a": 4.0, "b": 1.0}, width=20, sort=False)
        bar_a = chart.splitlines()[0].count("#")
        bar_b = chart.splitlines()[1].count("#")
        assert bar_a > bar_b

    def test_sorted_by_value_descending(self):
        chart = bar_chart({"low": 1.0, "high": 3.0})
        assert chart.splitlines()[0].startswith("high")

    def test_negative_values_render_without_bars(self):
        chart = bar_chart({"neg": -1.0, "pos": 2.0})
        negative_line = [line for line in chart.splitlines() if line.startswith("neg")][0]
        assert "#" not in negative_line

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            bar_chart({})

    def test_invalid_width_rejected(self):
        with pytest.raises(InvalidParameterError):
            bar_chart({"a": 1.0}, width=0)


class TestSeriesChart:
    def test_shows_first_and_last_values(self):
        chart = series_chart({"SFDM2": [3.0, 2.5, 2.0]})
        assert "3.000" in chart and "2.000" in chart

    def test_x_labels_header(self):
        chart = series_chart({"a": [1, 2]}, x_labels=[10, 20])
        assert "[10, 20]" in chart.splitlines()[0]

    def test_multiple_series_aligned(self):
        chart = series_chart({"alpha": [1, 2], "b": [2, 1]})
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].index("▁") == lines[1].index("█") or True  # alignment sanity

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            series_chart({})
