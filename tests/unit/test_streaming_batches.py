"""Unit tests for the stream batching helpers."""

import numpy as np
import pytest

from repro.data.element import Element
from repro.streaming.stream import DataStream, iter_batches
from repro.utils.errors import InvalidParameterError


def _elements(count=10):
    return [Element(uid=i, vector=np.array([float(i)]), group=i % 2) for i in range(count)]


class TestIterBatches:
    def test_even_split(self):
        chunks = list(iter_batches(_elements(9), 3))
        assert [len(chunk) for chunk in chunks] == [3, 3, 3]

    def test_ragged_tail(self):
        chunks = list(iter_batches(_elements(10), 4))
        assert [len(chunk) for chunk in chunks] == [4, 4, 2]

    def test_concatenation_preserves_order(self):
        elements = _elements(17)
        flat = [e.uid for chunk in iter_batches(elements, 5) for e in chunk]
        assert flat == [e.uid for e in elements]

    def test_size_larger_than_input(self):
        chunks = list(iter_batches(_elements(3), 100))
        assert len(chunks) == 1 and len(chunks[0]) == 3

    def test_empty_input(self):
        assert list(iter_batches([], 4)) == []

    def test_works_on_generators(self):
        generator = (element for element in _elements(6))
        assert [len(c) for c in iter_batches(generator, 4)] == [4, 2]

    @pytest.mark.parametrize("size", [0, -1])
    def test_invalid_size_rejected(self, size):
        with pytest.raises(InvalidParameterError):
            list(iter_batches(_elements(3), size))


class TestDataStreamBatches:
    def test_respects_canonical_order(self):
        stream = DataStream(_elements(8))
        flat = [e.uid for chunk in stream.batches(3) for e in chunk]
        assert flat == list(range(8))

    def test_respects_shuffle_order(self):
        stream = DataStream(_elements(30), shuffle_seed=13)
        flat = [e.uid for chunk in stream.batches(7) for e in chunk]
        assert flat == [e.uid for e in stream]

    def test_restartable(self):
        stream = DataStream(_elements(12), shuffle_seed=2)
        first = [e.uid for chunk in stream.batches(5) for e in chunk]
        second = [e.uid for chunk in stream.batches(5) for e in chunk]
        assert first == second
