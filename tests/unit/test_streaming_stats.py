"""Unit tests for StreamStats accounting."""

import json

import pytest

from repro.streaming.stats import StreamStats


class TestStreamStats:
    def test_defaults(self):
        stats = StreamStats()
        assert stats.total_seconds == 0.0
        assert stats.average_update_seconds == 0.0
        assert stats.total_distance_computations == 0

    def test_total_seconds(self):
        stats = StreamStats(stream_seconds=1.5, postprocess_seconds=0.5)
        assert stats.total_seconds == pytest.approx(2.0)

    def test_average_update_time(self):
        stats = StreamStats(stream_seconds=2.0, elements_processed=100)
        assert stats.average_update_seconds == pytest.approx(0.02)

    def test_record_stored_tracks_peak(self):
        stats = StreamStats()
        stats.record_stored(10)
        stats.record_stored(25)
        stats.record_stored(5)
        assert stats.peak_stored_elements == 25
        assert stats.final_stored_elements == 5

    def test_total_distance_computations(self):
        stats = StreamStats(
            stream_distance_computations=100, postprocess_distance_computations=40
        )
        assert stats.total_distance_computations == 140

    def test_as_dict_contains_extra(self):
        stats = StreamStats(extra={"num_guesses": 12})
        data = stats.as_dict()
        assert data["num_guesses"] == 12
        assert "total_seconds" in data
        assert "average_update_seconds" in data

    def test_as_dict_round_trips_through_json_with_string_extras(self):
        """Regression: ``extra`` holds strings too (e.g. ``index_kind``).

        The annotation used to claim ``Dict[str, float]`` while the index
        layer stored the resolved tree kind as a string; ``as_dict`` must
        stay JSON-serializable either way.
        """
        stats = StreamStats(
            elements_processed=42, extra={"index_kind": "kd", "num_guesses": 9}
        )
        data = stats.as_dict()
        restored = json.loads(json.dumps(data))
        assert restored == data
        assert restored["index_kind"] == "kd"
        assert restored["num_guesses"] == 9
