"""Unit tests for the wall-clock timers."""

import time

import pytest

from repro.utils.timer import StageTimer, Timer


class TestTimer:
    def test_starts_stopped(self):
        timer = Timer()
        assert not timer.running
        assert timer.elapsed == 0.0

    def test_measures_elapsed_time(self):
        timer = Timer()
        timer.start()
        time.sleep(0.01)
        elapsed = timer.stop()
        assert elapsed >= 0.009
        assert timer.elapsed == elapsed

    def test_accumulates_across_runs(self):
        timer = Timer()
        with timer.measure():
            time.sleep(0.005)
        first = timer.elapsed
        with timer.measure():
            time.sleep(0.005)
        assert timer.elapsed > first

    def test_double_start_raises(self):
        timer = Timer()
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()
        timer.stop()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_context_manager_stops_on_exception(self):
        timer = Timer()
        with pytest.raises(ValueError):
            with timer.measure():
                raise ValueError("boom")
        assert not timer.running
        assert timer.elapsed >= 0.0


class TestStageTimer:
    def test_records_named_stages(self):
        stages = StageTimer()
        with stages.stage("stream"):
            time.sleep(0.002)
        with stages.stage("postprocess"):
            time.sleep(0.002)
        totals = stages.totals()
        assert set(totals) == {"stream", "postprocess"}
        assert all(value > 0 for value in totals.values())

    def test_unknown_stage_elapsed_is_zero(self):
        assert StageTimer().elapsed("missing") == 0.0

    def test_same_stage_accumulates(self):
        stages = StageTimer()
        with stages.stage("work"):
            time.sleep(0.002)
        first = stages.elapsed("work")
        with stages.stage("work"):
            time.sleep(0.002)
        assert stages.elapsed("work") > first

    def test_total_sums_all_stages(self):
        stages = StageTimer()
        with stages.stage("a"):
            pass
        with stages.stage("b"):
            pass
        assert stages.total() == pytest.approx(stages.elapsed("a") + stages.elapsed("b"))
