"""Unit tests for the sliding-window stream adapter and windowed FDM wrapper."""

import numpy as np
import pytest

from repro.fairness.constraints import equal_representation
from repro.metrics.vector import EuclideanMetric
from repro.data.element import Element
from repro.streaming.window import CheckpointedWindowFDM, SlidingWindowStream
from repro.utils.errors import InvalidParameterError

METRIC = EuclideanMetric()


def _elements(count, period=2):
    return [
        Element(uid=i, vector=np.array([float(i), 0.0]), group=i % period)
        for i in range(count)
    ]


class TestSlidingWindowStream:
    def test_expiry_sequence(self):
        stream = SlidingWindowStream(_elements(5), window=2)
        expired_uids = []
        for element, expired in stream:
            expired_uids.extend(e.uid for e in expired)
        # Elements 0, 1, 2 expire while 3 and 4 remain in the final window.
        assert expired_uids == [0, 1, 2]

    def test_no_expiry_when_window_large(self):
        stream = SlidingWindowStream(_elements(4), window=10)
        assert all(not expired for _, expired in stream)

    def test_len(self):
        assert len(SlidingWindowStream(_elements(7), window=3)) == 7

    def test_invalid_window(self):
        with pytest.raises(InvalidParameterError):
            SlidingWindowStream(_elements(3), window=0)


class TestCheckpointedWindowFDM:
    def test_produces_fair_solution(self):
        constraint = equal_representation(4, [0, 1])
        algorithm = CheckpointedWindowFDM(METRIC, constraint, window=40, blocks=4)
        solution = algorithm.run(_elements(100))
        assert solution is not None
        assert solution.is_fair
        assert solution.size == 4

    def test_memory_stays_below_window(self):
        constraint = equal_representation(4, [0, 1])
        algorithm = CheckpointedWindowFDM(METRIC, constraint, window=60, blocks=6)
        for element in _elements(300):
            algorithm.process(element)
        assert algorithm.stored_elements < 60

    def test_solution_uses_only_recent_elements(self):
        """After many elements, expired blocks must not contribute to the pool."""
        constraint = equal_representation(4, [0, 1])
        algorithm = CheckpointedWindowFDM(METRIC, constraint, window=20, blocks=4)
        elements = _elements(200)
        for element in elements:
            algorithm.process(element)
        pool_uids = {e.uid for e in algorithm.candidate_pool()}
        # Everything older than ~2 windows ago must be gone.
        assert all(uid >= 140 for uid in pool_uids)

    def test_infeasible_window_returns_none(self):
        """If the recent window lacks a group entirely, no fair solution exists."""
        constraint = equal_representation(4, [0, 1])
        algorithm = CheckpointedWindowFDM(METRIC, constraint, window=10, blocks=2)
        # Only group-0 elements in the stream tail.
        elements = _elements(30, period=2)[:20] + [
            Element(uid=100 + i, vector=np.array([1000.0 + i, 0.0]), group=0) for i in range(30)
        ]
        solution = algorithm.run(elements)
        assert solution is None

    def test_invalid_blocks(self):
        constraint = equal_representation(4, [0, 1])
        with pytest.raises(InvalidParameterError):
            CheckpointedWindowFDM(METRIC, constraint, window=4, blocks=8)

    def test_empty_state_returns_none(self):
        constraint = equal_representation(4, [0, 1])
        algorithm = CheckpointedWindowFDM(METRIC, constraint, window=10, blocks=2)
        assert algorithm.solution() is None
