"""Unit tests for the windowing layer: streams, baseline, and incremental FDM."""

import itertools

import numpy as np
import pytest

from repro.fairness.constraints import equal_representation
from repro.metrics.vector import EuclideanMetric
from repro.data.element import Element
from repro.utils.errors import InvalidParameterError
from repro.windowing import (
    CheckpointedWindowFDM,
    SlidingWindowFDM,
    SlidingWindowStream,
    WindowedStream,
)

METRIC = EuclideanMetric()


def _elements(count, period=2):
    return [
        Element(uid=i, vector=np.array([float(i), 0.0]), group=i % period)
        for i in range(count)
    ]


def _element_generator(period=2):
    """An unbounded element source (must never be materialised)."""
    i = 0
    while True:
        yield Element(uid=i, vector=np.array([float(i % 17), 0.0]), group=i % period)
        i += 1


class TestSlidingWindowStream:
    def test_expiry_sequence(self):
        stream = SlidingWindowStream(_elements(5), window=2)
        expired_uids = []
        for element, expired in stream:
            expired_uids.extend(e.uid for e in expired)
        # Elements 0, 1, 2 expire while 3 and 4 remain in the final window.
        assert expired_uids == [0, 1, 2]

    def test_no_expiry_when_window_large(self):
        stream = SlidingWindowStream(_elements(4), window=10)
        assert all(not expired for _, expired in stream)

    def test_len(self):
        assert len(SlidingWindowStream(_elements(7), window=3)) == 7

    def test_invalid_window(self):
        with pytest.raises(InvalidParameterError):
            SlidingWindowStream(_elements(3), window=0)

    def test_generator_source_is_lazy(self):
        """Regression: an unbounded generator source must not be materialised."""
        stream = SlidingWindowStream(_element_generator(), window=3)
        taken = list(itertools.islice(iter(stream), 6))
        assert [element.uid for element, _ in taken] == [0, 1, 2, 3, 4, 5]
        assert [[e.uid for e in expired] for _, expired in taken] == [
            [], [], [], [0], [1], [2],
        ]

    def test_generator_source_has_no_len(self):
        stream = SlidingWindowStream(_element_generator(), window=3)
        with pytest.raises(TypeError, match="unsized"):
            len(stream)
        assert stream.__length_hint__() == 0

    def test_truthiness_never_raises(self):
        """bool() must not fall back to the raising __len__ of unsized streams."""
        assert bool(SlidingWindowStream(_element_generator(), window=3))
        assert bool(SlidingWindowStream(_elements(2), window=3))


class TestWindowedStreamPolicies:
    def test_tumbling_expires_whole_buckets(self):
        stream = WindowedStream(_elements(7), policy="tumbling", window=3)
        expiries = [[e.uid for e in expired] for _, expired in stream]
        assert expiries == [[], [], [], [0, 1, 2], [], [], [3, 4, 5]]

    def test_landmark_never_expires(self):
        stream = WindowedStream(_elements(64), policy="landmark")
        assert all(not expired for _, expired in stream)

    def test_unknown_policy_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown window policy"):
            WindowedStream(_elements(3), policy="hopping", window=2)


class TestCheckpointedWindowFDM:
    def test_produces_fair_solution(self):
        constraint = equal_representation(4, [0, 1])
        algorithm = CheckpointedWindowFDM(METRIC, constraint, window=40, blocks=4)
        solution = algorithm.run(_elements(100))
        assert solution is not None
        assert solution.is_fair
        assert solution.size == 4

    def test_memory_stays_below_window(self):
        constraint = equal_representation(4, [0, 1])
        algorithm = CheckpointedWindowFDM(METRIC, constraint, window=60, blocks=6)
        for element in _elements(300):
            algorithm.process(element)
        assert algorithm.stored_elements < 60

    def test_solution_uses_only_recent_elements(self):
        """After many elements, expired blocks must not contribute to the pool."""
        constraint = equal_representation(4, [0, 1])
        algorithm = CheckpointedWindowFDM(METRIC, constraint, window=20, blocks=4)
        elements = _elements(200)
        for element in elements:
            algorithm.process(element)
        pool_uids = {e.uid for e in algorithm.candidate_pool()}
        # Everything older than ~2 windows ago must be gone.
        assert all(uid >= 140 for uid in pool_uids)

    def test_infeasible_window_returns_none(self):
        """If the recent window lacks a group entirely, no fair solution exists."""
        constraint = equal_representation(4, [0, 1])
        algorithm = CheckpointedWindowFDM(METRIC, constraint, window=10, blocks=2)
        # Only group-0 elements in the stream tail.
        elements = _elements(30, period=2)[:20] + [
            Element(uid=100 + i, vector=np.array([1000.0 + i, 0.0]), group=0) for i in range(30)
        ]
        solution = algorithm.run(elements)
        assert solution is None

    def test_invalid_blocks(self):
        constraint = equal_representation(4, [0, 1])
        with pytest.raises(InvalidParameterError):
            CheckpointedWindowFDM(METRIC, constraint, window=4, blocks=8)

    def test_window_shorter_than_k_rejected(self):
        """A window that can never hold k elements is rejected eagerly."""
        constraint = equal_representation(8, [0, 1])
        with pytest.raises(InvalidParameterError, match="shorter than"):
            CheckpointedWindowFDM(METRIC, constraint, window=4, blocks=2)

    def test_empty_state_returns_none(self):
        constraint = equal_representation(4, [0, 1])
        algorithm = CheckpointedWindowFDM(METRIC, constraint, window=10, blocks=2)
        assert algorithm.solution() is None

    def test_run_accepts_generator(self):
        constraint = equal_representation(4, [0, 1])
        algorithm = CheckpointedWindowFDM(METRIC, constraint, window=20, blocks=4)
        solution = algorithm.run(itertools.islice(_element_generator(), 80))
        assert solution is not None and solution.is_fair


class TestSlidingWindowFDM:
    def test_produces_fair_solution(self):
        constraint = equal_representation(4, [0, 1])
        algorithm = SlidingWindowFDM(METRIC, constraint, window=40, blocks=4)
        solution = algorithm.run(_elements(100))
        assert solution is not None
        assert solution.is_fair
        assert solution.size == 4

    def test_pool_is_exactly_expiry_free(self):
        """Unlike the baseline, no expired element ever enters the pool."""
        constraint = equal_representation(4, [0, 1])
        algorithm = SlidingWindowFDM(METRIC, constraint, window=20, blocks=4)
        for element in _elements(203):
            algorithm.process(element)
            pool_uids = {e.uid for e in algorithm.candidate_pool()}
            assert all(uid >= algorithm.window_start for uid in pool_uids)

    def test_coverage_within_one_block_of_window_start(self):
        constraint = equal_representation(4, [0, 1])
        algorithm = SlidingWindowFDM(METRIC, constraint, window=24, blocks=6)
        for element in _elements(150):
            algorithm.process(element)
            assert algorithm.window_start <= algorithm.coverage_start
            assert algorithm.coverage_start <= algorithm.window_start + 24 // 6

    def test_memory_stays_below_window(self):
        constraint = equal_representation(4, [0, 1])
        algorithm = SlidingWindowFDM(METRIC, constraint, window=80, blocks=8)
        for element in _elements(400):
            algorithm.process(element)
        assert algorithm.stored_elements < 80

    def test_unbounded_source(self):
        """The algorithm runs on a generator without materialising it."""
        constraint = equal_representation(4, [0, 1])
        algorithm = SlidingWindowFDM(METRIC, constraint, window=30, blocks=3)
        solution = algorithm.run(itertools.islice(_element_generator(), 500))
        assert solution is not None and solution.is_fair

    def test_infeasible_window_returns_none(self):
        constraint = equal_representation(4, [0, 1])
        algorithm = SlidingWindowFDM(METRIC, constraint, window=10, blocks=2)
        elements = [
            Element(uid=i, vector=np.array([float(i), 0.0]), group=0) for i in range(40)
        ]
        assert algorithm.run(elements) is None

    def test_empty_state_returns_none(self):
        constraint = equal_representation(4, [0, 1])
        algorithm = SlidingWindowFDM(METRIC, constraint, window=10, blocks=2)
        assert algorithm.solution() is None

    def test_window_shorter_than_k_rejected(self):
        constraint = equal_representation(8, [0, 1])
        with pytest.raises(InvalidParameterError, match="shorter than"):
            SlidingWindowFDM(METRIC, constraint, window=4, blocks=2)

    def test_invalid_blocks(self):
        constraint = equal_representation(4, [0, 1])
        with pytest.raises(InvalidParameterError):
            SlidingWindowFDM(METRIC, constraint, window=4, blocks=8)

    def test_single_block_rejected(self):
        """blocks=1 would empty the pool right after every boundary."""
        constraint = equal_representation(4, [0, 1])
        with pytest.raises(InvalidParameterError, match="at least 2 blocks"):
            SlidingWindowFDM(METRIC, constraint, window=100, blocks=1)

    def test_two_blocks_stay_feasible_past_boundaries(self):
        """The minimum block count keeps a usable pool at every position."""
        constraint = equal_representation(4, [0, 1])
        algorithm = SlidingWindowFDM(METRIC, constraint, window=40, blocks=2)
        for element in _elements(130):
            algorithm.process(element)
            if algorithm.elements_processed >= algorithm.window:
                assert algorithm.solution() is not None

    def test_elements_processed(self):
        constraint = equal_representation(4, [0, 1])
        algorithm = SlidingWindowFDM(METRIC, constraint, window=10, blocks=2)
        for element in _elements(37):
            algorithm.process(element)
        assert algorithm.elements_processed == 37


def test_streaming_window_module_is_a_deprecation_shim():
    """The historical module keeps working but points at repro.windowing."""
    import importlib

    legacy = importlib.import_module("repro.streaming.window")
    with pytest.warns(DeprecationWarning, match="repro.windowing"):
        assert legacy.CheckpointedWindowFDM is CheckpointedWindowFDM
    with pytest.warns(DeprecationWarning, match="repro.windowing"):
        assert legacy.SlidingWindowStream is SlidingWindowStream
    with pytest.raises(AttributeError):
        legacy.NoSuchName
