"""Integration tests for SFDM2 (Algorithm 3, arbitrary number of groups)."""

import numpy as np
import pytest

from repro.baselines.exact import exact_fdm
from repro.baselines.fair_flow import fair_flow
from repro.core.sfdm2 import SFDM2
from repro.datasets.surrogates import lyrics_surrogate
from repro.datasets.synthetic import synthetic_blobs
from repro.fairness.constraints import FairnessConstraint, equal_representation
from repro.metrics.vector import EuclideanMetric
from repro.data.element import Element
from repro.streaming.stream import DataStream


def _grouped_line(count, period):
    return [
        Element(uid=i, vector=np.array([float(i), 0.0]), group=i % period) for i in range(count)
    ]


class TestSFDM2:
    def test_two_groups(self, two_group_dataset):
        constraint = equal_representation(10, two_group_dataset.group_sizes().keys())
        result = SFDM2(two_group_dataset.metric, constraint, epsilon=0.1).run(
            two_group_dataset.stream(seed=0)
        )
        assert result.solution.is_fair
        assert result.solution.size == 10

    def test_five_groups(self, five_group_dataset):
        constraint = equal_representation(10, five_group_dataset.group_sizes().keys())
        result = SFDM2(five_group_dataset.metric, constraint, epsilon=0.1).run(
            five_group_dataset.stream(seed=0)
        )
        assert result.solution.is_fair
        assert result.solution.group_counts() == constraint.quotas

    def test_theorem4_guarantee_with_exact_bounds(self):
        elements = _grouped_line(18, 3)
        constraint = equal_representation(6, [0, 1, 2])
        epsilon = 0.1
        m = 3
        algorithm = SFDM2(
            EuclideanMetric(), constraint, epsilon=epsilon, distance_bounds=(1.0, 17.0),
            fallback=False,
        )
        result = algorithm.run(DataStream(elements))
        _, optimum = exact_fdm(elements, EuclideanMetric(), constraint)
        assert result.solution.is_fair
        assert result.diversity >= (1 - epsilon) / (3 * m + 2) * optimum - 1e-9

    def test_guarantee_across_random_instances(self):
        epsilon = 0.2
        for seed in range(3):
            dataset = synthetic_blobs(n=80, m=4, seed=seed)
            constraint = equal_representation(8, dataset.group_sizes().keys())
            d_min, d_max = dataset.space().distance_bounds(exact=True)
            result = SFDM2(
                dataset.metric, constraint, epsilon=epsilon, distance_bounds=(d_min, d_max)
            ).run(dataset.stream(seed=seed))
            assert result.solution.is_fair

    def test_usually_beats_fair_flow_quality_at_larger_m(self):
        """The paper's headline empirical finding: SFDM2 > FairFlow for m > 2.

        We check it in expectation over a few seeds rather than per-instance,
        because on tiny instances ties can occur.
        """
        wins = 0
        trials = 3
        for seed in range(trials):
            dataset = synthetic_blobs(n=400, m=8, seed=seed)
            constraint = equal_representation(16, dataset.group_sizes().keys())
            sfdm2 = SFDM2(dataset.metric, constraint, epsilon=0.1).run(dataset.stream(seed=seed))
            flow = fair_flow(dataset.elements, dataset.metric, constraint)
            if sfdm2.diversity >= flow.diversity - 1e-12:
                wins += 1
        assert wins >= 2

    def test_skewed_quotas(self):
        dataset = synthetic_blobs(n=500, m=3, seed=2)
        constraint = FairnessConstraint({0: 6, 1: 2, 2: 2})
        result = SFDM2(dataset.metric, constraint, epsilon=0.1).run(dataset.stream(seed=1))
        assert result.solution.group_counts() == {0: 6, 1: 2, 2: 2}

    def test_angular_metric_dataset(self):
        dataset = lyrics_surrogate(n=400, num_genres=6, seed=0)
        constraint = equal_representation(12, dataset.group_sizes().keys())
        result = SFDM2(dataset.metric, constraint, epsilon=0.05).run(dataset.stream(seed=0))
        assert result.solution.is_fair
        assert 0 < result.diversity < np.pi

    def test_space_usage_grows_with_m_but_stays_sublinear(self):
        small_m = synthetic_blobs(n=2_000, m=2, seed=1)
        large_m = synthetic_blobs(n=2_000, m=10, seed=1)
        k = 10
        result_small = SFDM2(
            small_m.metric, equal_representation(k, small_m.group_sizes().keys()), epsilon=0.2
        ).run(small_m.stream(seed=0))
        result_large = SFDM2(
            large_m.metric, equal_representation(k, large_m.group_sizes().keys()), epsilon=0.2
        ).run(large_m.stream(seed=0))
        assert result_large.stats.peak_stored_elements > result_small.stats.peak_stored_elements
        assert result_large.stats.peak_stored_elements < large_m.size / 2

    def test_single_group_degenerates_to_unconstrained(self):
        dataset = synthetic_blobs(n=200, m=1, seed=4)
        constraint = FairnessConstraint({0: 8})
        result = SFDM2(dataset.metric, constraint, epsilon=0.1).run(dataset.stream(seed=0))
        assert result.solution.size == 8
