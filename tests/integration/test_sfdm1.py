"""Integration tests for SFDM1 (Algorithm 2, two groups)."""

import numpy as np
import pytest

from repro.baselines.exact import exact_fdm
from repro.core.sfdm1 import SFDM1
from repro.datasets.surrogates import adult_surrogate
from repro.datasets.synthetic import synthetic_blobs
from repro.fairness.constraints import FairnessConstraint, equal_representation, proportional_representation
from repro.metrics.vector import EuclideanMetric
from repro.data.element import Element
from repro.streaming.stream import DataStream
from repro.utils.errors import InvalidParameterError


def _two_group_line(count):
    return [
        Element(uid=i, vector=np.array([float(i), 0.0]), group=i % 2) for i in range(count)
    ]


class TestSFDM1:
    def test_rejects_non_two_group_constraints(self):
        constraint = FairnessConstraint({0: 1, 1: 1, 2: 1})
        with pytest.raises(InvalidParameterError):
            SFDM1(EuclideanMetric(), constraint)

    def test_returns_fair_solution(self, two_group_dataset):
        constraint = equal_representation(10, two_group_dataset.group_sizes().keys())
        result = SFDM1(two_group_dataset.metric, constraint, epsilon=0.1).run(
            two_group_dataset.stream(seed=0)
        )
        assert result.solution.is_fair
        assert result.solution.size == 10

    def test_unbalanced_quotas(self, two_group_dataset):
        constraint = FairnessConstraint({0: 7, 1: 3})
        result = SFDM1(two_group_dataset.metric, constraint, epsilon=0.1).run(
            two_group_dataset.stream(seed=1)
        )
        assert result.solution.group_counts() == {0: 7, 1: 3}

    def test_theorem2_guarantee_with_exact_bounds(self):
        elements = _two_group_line(16)
        constraint = equal_representation(4, [0, 1])
        epsilon = 0.1
        algorithm = SFDM1(
            EuclideanMetric(), constraint, epsilon=epsilon, distance_bounds=(1.0, 15.0),
            fallback=False,
        )
        result = algorithm.run(DataStream(elements))
        _, optimum = exact_fdm(elements, EuclideanMetric(), constraint)
        assert result.diversity >= (1 - epsilon) / 4 * optimum - 1e-9

    def test_guarantee_across_random_instances(self):
        epsilon = 0.2
        for seed in range(4):
            dataset = synthetic_blobs(n=60, m=2, seed=seed)
            constraint = equal_representation(6, dataset.group_sizes().keys())
            space = dataset.space()
            d_min, d_max = space.distance_bounds(exact=True)
            result = SFDM1(
                dataset.metric, constraint, epsilon=epsilon, distance_bounds=(d_min, d_max)
            ).run(dataset.stream(seed=seed))
            assert result.solution.is_fair
            # Certified ratio against the brute-force optimum on a subsample
            # is too slow here; instead check against the GMM upper bound.
            from repro.evaluation.measures import optimum_upper_bound

            upper = optimum_upper_bound(dataset.elements, dataset.metric, 6)
            assert result.diversity >= (1 - epsilon) / 8 * upper - 1e-9

    def test_space_usage_sublinear(self):
        dataset = synthetic_blobs(n=3_000, m=2, seed=9)
        constraint = equal_representation(10, dataset.group_sizes().keys())
        result = SFDM1(dataset.metric, constraint, epsilon=0.1).run(dataset.stream(seed=2))
        assert result.stats.peak_stored_elements < dataset.size / 5

    def test_proportional_representation(self):
        dataset = adult_surrogate(n=800, group_by="sex", seed=3)
        constraint = proportional_representation(10, dataset.group_sizes())
        result = SFDM1(dataset.metric, constraint, epsilon=0.1).run(dataset.stream(seed=0))
        assert result.solution.is_fair
        # The majority group gets more slots under PR on the skewed surrogate.
        assert constraint.quota(0) > constraint.quota(1)

    def test_deterministic_for_fixed_stream_order(self):
        elements = _two_group_line(40)
        constraint = equal_representation(6, [0, 1])
        results = [
            SFDM1(EuclideanMetric(), constraint, epsilon=0.1, distance_bounds=(1.0, 39.0)).run(
                DataStream(elements)
            ).diversity
            for _ in range(2)
        ]
        assert results[0] == pytest.approx(results[1])

    def test_params_recorded(self, two_group_dataset):
        constraint = equal_representation(8, two_group_dataset.group_sizes().keys())
        result = SFDM1(two_group_dataset.metric, constraint, epsilon=0.15).run(
            two_group_dataset.stream(seed=4)
        )
        assert result.params["epsilon"] == 0.15
        assert result.params["k"] == 8
