"""Smoke tests that run every example script end-to-end.

The examples are part of the public deliverable, so regressions in the
library API should break these tests rather than only surfacing when a user
runs the scripts by hand.  Each script is executed in a subprocess with a
reduced workload via environment-independent defaults; the assertion is on
the exit status and a few expected output markers.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

#: Subprocess-heavy end-to-end scripts: excluded from `make test-fast` and
#: the coverage gate (child processes contribute no in-process coverage).
pytestmark = pytest.mark.slow

EXAMPLES_DIR = Path(__file__).parent.parent.parent / "examples"

EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), f"{script} produced no output"


def test_quickstart_reports_all_algorithms():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    for name in ("SFDM1", "SFDM2", "FairSwap", "FairFlow", "GMM"):
        assert name in completed.stdout


def test_figure_illustration_draws_two_figures():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "figure1_and_2_illustration.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert "Figure 1(a)" in completed.stdout
    assert "Figure 2(b)" in completed.stdout
