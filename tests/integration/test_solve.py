"""Integration tests for the ``repro.solve`` façade and its data resolution."""

import numpy as np
import pytest

import repro
from repro.data.element import Element
from repro.utils.errors import InvalidParameterError


@pytest.fixture(scope="module")
def dataset():
    return repro.synthetic_blobs(n=240, m=2, seed=5)


@pytest.fixture(scope="module")
def arrays():
    rng = np.random.default_rng(11)
    return rng.normal(size=(180, 3)), rng.integers(0, 3, size=180)


class TestDataShapes:
    def test_dataset_spec(self, dataset):
        result = repro.solve(dataset, k=6, algorithm="SFDM2", seed=1)
        assert result.succeeded and result.solution.is_fair

    def test_arrays_with_groups(self, arrays):
        features, groups = arrays
        result = repro.solve(features, k=6, groups=groups, algorithm="SFDM2")
        assert result.succeeded
        assert result.solution.is_fair

    def test_element_store(self, arrays):
        features, groups = arrays
        store = repro.ElementStore(features, np.asarray(groups, dtype=np.int64))
        result = repro.solve(store, k=6, algorithm="FairFlow")
        assert result.succeeded

    def test_data_stream(self, arrays):
        features, groups = arrays
        stream = repro.stream_from_arrays(features, groups, shuffle_seed=3)
        result = repro.solve(stream, k=6, algorithm="SFDM2")
        assert result.succeeded

    def test_element_sequence(self):
        elements = [
            Element(uid=i, vector=np.array([float(i), float(i % 7)]), group=i % 2)
            for i in range(60)
        ]
        result = repro.solve(elements, k=4, algorithm="SFDM1")
        assert result.succeeded

    def test_array_without_groups_is_unconstrained(self, arrays):
        features, _ = arrays
        result = repro.solve(features, k=5)
        assert result.algorithm == "StreamingDM"

    def test_rejects_unknown_shapes(self):
        with pytest.raises(InvalidParameterError, match="accepts"):
            repro.solve(object(), k=4)

    def test_rejects_missing_data(self):
        with pytest.raises(InvalidParameterError, match="needs data"):
            repro.solve(k=4)


class TestAutoSelection:
    def test_two_groups_pick_sfdm1(self, dataset):
        result = repro.solve(dataset, k=6, seed=1)
        assert result.algorithm == "SFDM1"

    def test_many_groups_pick_sfdm2(self):
        dataset = repro.synthetic_blobs(n=240, m=4, seed=6)
        result = repro.solve(dataset, k=8, seed=1)
        assert result.algorithm == "SFDM2"

    def test_explicit_constraint_drives_auto(self, arrays):
        features, groups = arrays
        constraint = repro.equal_representation(6, [0, 1, 2])
        result = repro.solve(features, groups=groups, constraint=constraint)
        assert result.algorithm == "SFDM2"


class TestConfiguration:
    def test_solve_spec_object(self, dataset):
        spec = repro.SolveSpec(data=dataset, k=6, algorithm="SFDM2", seed=2)
        result = repro.solve(spec)
        assert result.succeeded

    def test_spec_plus_kwargs_rejected(self, dataset):
        with pytest.raises(InvalidParameterError, match="not both"):
            repro.solve(repro.SolveSpec(data=dataset, k=6), k=8)

    def test_metric_by_name(self, arrays):
        features, groups = arrays
        result = repro.solve(
            features, k=6, groups=groups, algorithm="SFDM2", metric="manhattan"
        )
        assert result.succeeded

    def test_unknown_metric_rejected(self, arrays):
        features, groups = arrays
        with pytest.raises(InvalidParameterError, match="unknown metric"):
            repro.solve(features, k=6, groups=groups, metric="warp")

    def test_proportional_fairness(self, dataset):
        result = repro.solve(dataset, k=8, fairness="proportional", seed=1)
        assert result.succeeded

    def test_bad_fairness_rejected(self, dataset):
        with pytest.raises(InvalidParameterError, match="fairness"):
            repro.solve(dataset, k=6, fairness="strict")

    def test_missing_k_rejected(self, dataset):
        with pytest.raises(InvalidParameterError, match="needs k"):
            repro.solve(dataset, algorithm="SFDM2")

    def test_conflicting_k_and_constraint_rejected(self, dataset):
        constraint = repro.equal_representation(6, [0, 1])
        with pytest.raises(InvalidParameterError, match="conflicts"):
            repro.solve(dataset, k=8, constraint=constraint)

    def test_unknown_option_rejected_eagerly(self, dataset):
        with pytest.raises(InvalidParameterError, match="does not accept"):
            repro.solve(dataset, k=6, algorithm="SFDM2", shards=4)

    def test_unknown_algorithm_rejected(self, dataset):
        with pytest.raises(InvalidParameterError, match="unknown algorithm"):
            repro.solve(dataset, k=6, algorithm="Magic")

    def test_group_limit_enforced(self):
        dataset = repro.synthetic_blobs(n=240, m=4, seed=6)
        with pytest.raises(InvalidParameterError, match="m=4"):
            repro.solve(dataset, k=8, algorithm="SFDM1")
