"""Integration tests for the experiment harness end-to-end."""

import pytest

from repro.datasets.synthetic import synthetic_blobs
from repro.evaluation.harness import (
    ExperimentConfig,
    coreset_algorithm,
    default_algorithms,
    extended_algorithms,
    parallel_algorithm,
    run_experiment,
    streaming_algorithms,
    window_algorithm,
)
from repro.evaluation.reporting import format_table, records_to_rows, write_csv
from repro.utils.errors import InvalidParameterError


class TestRunExperiment:
    def test_full_suite_on_two_group_dataset(self):
        dataset = synthetic_blobs(n=200, m=2, seed=1)
        configs = [ExperimentConfig(dataset=dataset, k=6, repetitions=1)]
        records = run_experiment(configs)
        names = {record.algorithm for record in records}
        assert names == {"GMM", "FairSwap", "FairFlow", "SFDM1", "SFDM2"}
        assert all(record.diversity > 0 for record in records)

    def test_unsupported_algorithms_skipped_for_many_groups(self):
        dataset = synthetic_blobs(n=200, m=4, seed=1)
        configs = [ExperimentConfig(dataset=dataset, k=8, repetitions=1)]
        records = run_experiment(configs)
        names = {record.algorithm for record in records}
        assert "SFDM1" not in names
        assert "FairSwap" not in names
        assert {"GMM", "FairFlow", "SFDM2"}.issubset(names)

    def test_streaming_only_suite(self):
        dataset = synthetic_blobs(n=150, m=2, seed=2)
        configs = [ExperimentConfig(dataset=dataset, k=6, repetitions=2)]
        records = run_experiment(configs, algorithms=streaming_algorithms())
        assert {record.algorithm for record in records} == {"SFDM1", "SFDM2"}
        assert all(record.repetitions == 2 for record in records)

    def test_records_flow_into_reporting(self, tmp_path):
        dataset = synthetic_blobs(n=150, m=2, seed=3)
        configs = [ExperimentConfig(dataset=dataset, k=6, repetitions=1)]
        records = run_experiment(configs, algorithms=streaming_algorithms())
        rows = records_to_rows(records, columns=["algorithm", "diversity", "total_seconds"])
        table = format_table(rows, title="smoke")
        assert "SFDM1" in table and "SFDM2" in table
        path = write_csv(rows, tmp_path / "records.csv")
        assert path.exists()

    def test_multiple_cells(self):
        dataset = synthetic_blobs(n=120, m=2, seed=4)
        configs = [
            ExperimentConfig(dataset=dataset, k=4, repetitions=1),
            ExperimentConfig(dataset=dataset, k=8, repetitions=1),
        ]
        records = run_experiment(configs, algorithms=streaming_algorithms())
        ks = {record.k for record in records}
        assert ks == {4, 8}

    def test_extended_suite(self):
        dataset = synthetic_blobs(n=240, m=3, seed=6)
        configs = [ExperimentConfig(dataset=dataset, k=6, repetitions=1)]
        records = run_experiment(configs, algorithms=extended_algorithms(shards=3))
        names = {record.algorithm for record in records}
        assert names == {
            "Coreset",
            "WindowFDM",
            "SlidingWindowFDM",
            "ParallelFDM",
            "MWU",
        }
        assert all(record.diversity > 0 for record in records)

    def test_parallel_algorithm_validates_eagerly(self):
        with pytest.raises(InvalidParameterError):
            parallel_algorithm(shards=0)
        with pytest.raises(InvalidParameterError):
            parallel_algorithm(backend="gpu")
        with pytest.raises(InvalidParameterError):
            parallel_algorithm(strategy="zigzag")
        with pytest.raises(InvalidParameterError):
            parallel_algorithm(summarizer="kmeans")

    def test_window_and_coreset_validate_eagerly(self):
        with pytest.raises(InvalidParameterError):
            window_algorithm(window=0)
        with pytest.raises(InvalidParameterError):
            window_algorithm(blocks=0)
        with pytest.raises(InvalidParameterError):
            coreset_algorithm(num_parts=0)
        with pytest.raises(InvalidParameterError):
            coreset_algorithm(num_parts="four")
        with pytest.raises(InvalidParameterError):
            coreset_algorithm(num_parts=2.9)

    def test_parallel_spec_runs_with_repetitions(self):
        dataset = synthetic_blobs(n=200, m=2, seed=9)
        configs = [ExperimentConfig(dataset=dataset, k=6, repetitions=2)]
        records = run_experiment(
            configs, algorithms=[parallel_algorithm(shards=4, backend="thread")]
        )
        assert records[0].algorithm == "ParallelFDM"
        assert records[0].repetitions == 2
        assert records[0].failures == 0

    def test_proportional_fairness_cells(self):
        dataset = synthetic_blobs(n=200, m=2, seed=5)
        configs = [
            ExperimentConfig(dataset=dataset, k=8, repetitions=1, fairness="proportional")
        ]
        records = run_experiment(configs, algorithms=streaming_algorithms())
        assert all(record.fairness == "proportional" for record in records)
        assert all(record.diversity > 0 for record in records)
