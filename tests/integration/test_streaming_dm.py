"""Integration tests for Algorithm 1 (unconstrained streaming DM)."""

import numpy as np
import pytest

from repro.baselines.exact import exact_dm
from repro.core.streaming_dm import StreamingDiversityMaximization
from repro.datasets.synthetic import synthetic_blobs
from repro.metrics.vector import EuclideanMetric
from repro.data.element import Element
from repro.streaming.stream import DataStream
from repro.utils.errors import NoFeasibleSolutionError


def _line_stream(count):
    elements = [Element(uid=i, vector=np.array([float(i), 0.0]), group=0) for i in range(count)]
    return elements, DataStream(elements)


class TestStreamingDM:
    def test_returns_k_elements(self):
        _, stream = _line_stream(50)
        result = StreamingDiversityMaximization(EuclideanMetric(), k=5, epsilon=0.1).run(stream)
        assert result.solution.size == 5

    def test_theorem1_guarantee_with_exact_bounds(self):
        """With exact (d_min, d_max) the solution must be >= (1-eps)/2 * OPT."""
        elements, stream = _line_stream(16)
        epsilon = 0.1
        algorithm = StreamingDiversityMaximization(
            EuclideanMetric(), k=4, epsilon=epsilon, distance_bounds=(1.0, 15.0)
        )
        result = algorithm.run(stream)
        _, optimum = exact_dm(elements, EuclideanMetric(), 4)
        assert result.diversity >= (1 - epsilon) / 2 * optimum - 1e-9

    def test_guarantee_holds_across_permutations(self):
        dataset = synthetic_blobs(n=200, m=1, seed=3)
        space = dataset.space()
        d_min, d_max = space.distance_bounds(exact=True)
        epsilon = 0.1
        from repro.baselines.gmm import gmm

        upper = 2 * gmm(dataset.elements, dataset.metric, 8).diversity  # >= OPT
        for seed in range(3):
            result = StreamingDiversityMaximization(
                dataset.metric, k=8, epsilon=epsilon, distance_bounds=(d_min, d_max)
            ).run(dataset.stream(seed=seed))
            # OPT >= upper/2, so the guarantee implies >= (1-eps)/4 * upper.
            assert result.diversity >= (1 - epsilon) / 4 * upper / 2 - 1e-9

    def test_space_usage_is_sublinear(self):
        dataset = synthetic_blobs(n=2_000, m=1, seed=5)
        result = StreamingDiversityMaximization(dataset.metric, k=10, epsilon=0.2).run(
            dataset.stream()
        )
        assert result.stats.peak_stored_elements < dataset.size / 4
        assert result.stats.elements_processed == dataset.size

    def test_estimated_bounds_still_work(self):
        _, stream = _line_stream(100)
        result = StreamingDiversityMaximization(EuclideanMetric(), k=6, epsilon=0.1).run(stream)
        assert result.solution.size == 6
        assert result.diversity > 0

    def test_too_few_distinct_points_raises(self):
        elements = [Element(uid=i, vector=np.array([0.0, 0.0]), group=0) for i in range(5)]
        stream = DataStream(elements)
        algorithm = StreamingDiversityMaximization(
            EuclideanMetric(), k=3, epsilon=0.1, distance_bounds=(1.0, 2.0)
        )
        with pytest.raises(NoFeasibleSolutionError):
            algorithm.run(stream)

    def test_stats_track_guesses_and_distances(self):
        _, stream = _line_stream(60)
        result = StreamingDiversityMaximization(EuclideanMetric(), k=5, epsilon=0.1).run(stream)
        assert result.stats.extra["num_guesses"] > 0
        assert result.stats.stream_distance_computations > 0
        assert result.stats.stream_seconds > 0
