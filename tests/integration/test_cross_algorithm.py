"""Cross-algorithm consistency tests.

These tests encode the *relationships* the paper relies on: every fair
solution is dominated by the unconstrained optimum, all algorithms agree on
fairness, streaming algorithms store far fewer elements than the offline
baselines, and the quality ordering reported in the evaluation holds at
least loosely on small instances.
"""

import pytest

from repro.baselines.fair_flow import fair_flow
from repro.baselines.fair_swap import fair_swap
from repro.baselines.gmm import gmm
from repro.core.sfdm1 import SFDM1
from repro.core.sfdm2 import SFDM2
from repro.datasets.synthetic import synthetic_blobs
from repro.evaluation.measures import optimum_upper_bound
from repro.fairness.constraints import equal_representation


@pytest.fixture(scope="module")
def dataset():
    return synthetic_blobs(n=600, m=2, seed=21)


@pytest.fixture(scope="module")
def constraint(dataset):
    return equal_representation(12, dataset.group_sizes().keys())


@pytest.fixture(scope="module")
def results(dataset, constraint):
    return {
        "GMM": gmm(dataset.elements, dataset.metric, constraint.total_size),
        "FairSwap": fair_swap(dataset.elements, dataset.metric, constraint),
        "FairFlow": fair_flow(dataset.elements, dataset.metric, constraint),
        "SFDM1": SFDM1(dataset.metric, constraint, epsilon=0.1).run(dataset.stream(seed=1)),
        "SFDM2": SFDM2(dataset.metric, constraint, epsilon=0.1).run(dataset.stream(seed=1)),
    }


class TestCrossAlgorithmConsistency:
    def test_every_fair_algorithm_returns_fair_solution(self, results, constraint):
        for name, result in results.items():
            if name == "GMM":
                continue
            assert result.solution.is_fair, f"{name} returned an unfair solution"
            assert result.solution.size == constraint.total_size

    def test_fair_solutions_never_beat_unconstrained_upper_bound(self, results, dataset, constraint):
        upper = optimum_upper_bound(dataset.elements, dataset.metric, constraint.total_size)
        for name, result in results.items():
            assert result.diversity <= upper + 1e-9, name

    def test_streaming_solutions_are_competitive_with_fair_swap(self, results):
        """The paper reports SFDM quality 'close or equal' to FairSwap at m=2.

        Allow a generous factor to keep the test robust on random data while
        still catching gross regressions.
        """
        baseline = results["FairSwap"].diversity
        assert results["SFDM1"].diversity >= 0.5 * baseline
        assert results["SFDM2"].diversity >= 0.5 * baseline

    def test_streaming_algorithms_store_far_fewer_elements(self, results, dataset):
        for name in ("SFDM1", "SFDM2"):
            assert results[name].stats.peak_stored_elements < dataset.size / 4
        for name in ("GMM", "FairSwap", "FairFlow"):
            assert results[name].stats.peak_stored_elements == dataset.size

    def test_sfdm2_not_worse_than_sfdm1_by_much(self, results):
        """The paper finds SFDM2 consistently at least as good as SFDM1."""
        assert results["SFDM2"].diversity >= 0.7 * results["SFDM1"].diversity

    def test_all_algorithms_record_positive_runtime(self, results):
        for name, result in results.items():
            assert result.stats.total_seconds > 0, name
