"""Registry-driven equivalence: ``repro.solve`` == direct invocation.

For **every** registered algorithm, dispatching through the façade must
return a byte-identical solution — same element uids in the same order,
bit-equal diversity — and identical distance accounting as invoking the
underlying algorithm directly with the historical calling convention.
The test is driven off :func:`repro.algorithm_names`, so registering a new
built-in without adding its direct-call comparator here fails loudly.
"""

import pytest

import repro
from repro.baselines.fair_flow import fair_flow
from repro.baselines.fair_gmm import fair_gmm
from repro.baselines.fair_swap import fair_swap
from repro.baselines.gmm import gmm
from repro.baselines.mwu import mwu_fair
from repro.core.coreset import coreset_fair_diversity
from repro.core.sfdm1 import SFDM1
from repro.core.sfdm2 import SFDM2
from repro.core.streaming_dm import StreamingDiversityMaximization
from repro.datasets.synthetic import synthetic_blobs
from repro.fairness.constraints import equal_representation
from repro.parallel.driver import ParallelFDM
from repro.windowing import CheckpointedWindowFDM, SlidingWindowFDM

K = 6
EPSILON = 0.1
SEED = 7
#: Options forwarded to solve() per algorithm (must match the direct call).
SOLVE_OPTIONS = {
    "ParallelFDM": {"shards": 3, "backend": "serial"},
    "Coreset": {"num_parts": 3},
    "SlidingWindowFDM": {"window": 100, "blocks": 5},
}


def _direct_streaming_dm(dataset, constraint):
    algorithm = StreamingDiversityMaximization(
        metric=dataset.metric, k=K, epsilon=EPSILON
    )
    return algorithm.run(dataset.stream(seed=SEED))


def _direct_sfdm1(dataset, constraint):
    algorithm = SFDM1(metric=dataset.metric, constraint=constraint, epsilon=EPSILON)
    return algorithm.run(dataset.stream(seed=SEED))


def _direct_sfdm2(dataset, constraint):
    algorithm = SFDM2(metric=dataset.metric, constraint=constraint, epsilon=EPSILON)
    return algorithm.run(dataset.stream(seed=SEED))


def _direct_gmm(dataset, constraint):
    return gmm(dataset.elements, dataset.metric, K)


def _direct_fair_swap(dataset, constraint):
    return fair_swap(dataset.elements, dataset.metric, constraint)


def _direct_fair_flow(dataset, constraint):
    return fair_flow(dataset.elements, dataset.metric, constraint)


def _direct_fair_gmm(dataset, constraint):
    return fair_gmm(dataset.elements, dataset.metric, constraint)


def _direct_mwu(dataset, constraint):
    return mwu_fair(
        dataset.elements, dataset.metric, constraint, epsilon=EPSILON, seed=SEED
    )


def _direct_coreset(dataset, constraint):
    return coreset_fair_diversity(
        dataset.elements, dataset.metric, constraint, num_parts=3
    )


def _direct_window(dataset, constraint):
    algorithm = CheckpointedWindowFDM(
        metric=dataset.metric,
        constraint=constraint,
        window=dataset.size,
        blocks=min(8, dataset.size),
    )
    for element in dataset.stream(seed=SEED):
        algorithm.process(element)
    return algorithm.solution()


def _direct_sliding_window(dataset, constraint):
    algorithm = SlidingWindowFDM(
        metric=dataset.metric,
        constraint=constraint,
        window=100,
        blocks=5,
    )
    for element in dataset.stream(seed=SEED):
        algorithm.process(element)
    return algorithm.solution()


def _direct_parallel(dataset, constraint):
    algorithm = ParallelFDM(
        metric=dataset.metric,
        constraint=constraint,
        shards=3,
        backend="serial",
        seed=SEED,
    )
    return algorithm.run(dataset.stream(seed=SEED))


DIRECT_CALLS = {
    "StreamingDM": _direct_streaming_dm,
    "SFDM1": _direct_sfdm1,
    "SFDM2": _direct_sfdm2,
    "GMM": _direct_gmm,
    "FairSwap": _direct_fair_swap,
    "FairFlow": _direct_fair_flow,
    "FairGMM": _direct_fair_gmm,
    "MWU": _direct_mwu,
    "Coreset": _direct_coreset,
    "WindowFDM": _direct_window,
    "SlidingWindowFDM": _direct_sliding_window,
    "ParallelFDM": _direct_parallel,
}


@pytest.fixture(scope="module")
def dataset():
    return synthetic_blobs(n=250, m=2, seed=3)


@pytest.fixture(scope="module")
def constraint(dataset):
    return equal_representation(K, list(dataset.group_sizes().keys()))


def test_every_registered_algorithm_has_a_direct_comparator():
    assert set(repro.algorithm_names()) == set(DIRECT_CALLS)


@pytest.mark.parametrize("name", sorted(DIRECT_CALLS))
def test_solve_matches_direct_invocation(name, dataset, constraint):
    direct = DIRECT_CALLS[name](dataset, constraint)
    via_solve = repro.solve(
        dataset,
        k=K,
        algorithm=name,
        epsilon=EPSILON,
        seed=SEED,
        **SOLVE_OPTIONS.get(name, {}),
    )

    assert via_solve.algorithm == repro.get_algorithm(name).name

    direct_solution = direct.solution if hasattr(direct, "solution") else direct
    assert via_solve.solution is not None and direct_solution is not None
    assert [e.uid for e in via_solve.solution.elements] == [
        e.uid for e in direct_solution.elements
    ]
    assert via_solve.solution.diversity == direct_solution.diversity

    if hasattr(direct, "stats"):
        assert (
            via_solve.stats.total_distance_computations
            == direct.stats.total_distance_computations
        )
        assert via_solve.stats.elements_processed == direct.stats.elements_processed


def test_no_per_algorithm_closures_left_in_harness_or_cli():
    """The acceptance criterion: all dispatch goes through the registry."""
    import inspect

    import repro.cli
    import repro.evaluation.harness as harness

    for module in (harness, repro.cli):
        source = inspect.getsource(module)
        assert "_run_sfdm" not in source
        assert "_make_streaming_runner" not in source
    # the only runner-building function left is the generic registry bridge
    assert hasattr(harness, "_registry_runner")
