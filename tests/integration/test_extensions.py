"""Integration tests for the extension features layered on top of the paper.

Covers the SFDM2 ablation knob (``greedy_augmentation``), the local-search
post-optimizer applied to streaming output, the composable-coreset pipeline,
and the sliding-window wrapper on a realistic-looking stream.
"""

import pytest

from repro.core.coreset import coreset_fair_diversity
from repro.core.local_search import local_search_improve
from repro.core.sfdm2 import SFDM2
from repro.datasets.synthetic import synthetic_blobs
from repro.fairness.constraints import equal_representation
from repro.windowing import CheckpointedWindowFDM


class TestGreedyAugmentationAblation:
    def test_both_variants_fair(self):
        dataset = synthetic_blobs(n=400, m=4, seed=8)
        constraint = equal_representation(12, dataset.group_sizes().keys())
        greedy = SFDM2(dataset.metric, constraint, epsilon=0.1).run(dataset.stream(seed=3))
        plain = SFDM2(
            dataset.metric, constraint, epsilon=0.1, greedy_augmentation=False
        ).run(dataset.stream(seed=3))
        assert greedy.solution.is_fair
        assert plain.solution.is_fair

    def test_greedy_variant_not_dominated(self):
        """Across a few seeds, the diversity-aware augmentation wins on average."""
        greedy_total = 0.0
        plain_total = 0.0
        for seed in range(3):
            dataset = synthetic_blobs(n=400, m=5, seed=seed)
            constraint = equal_representation(15, dataset.group_sizes().keys())
            greedy_total += (
                SFDM2(dataset.metric, constraint, epsilon=0.1)
                .run(dataset.stream(seed=seed))
                .diversity
            )
            plain_total += (
                SFDM2(dataset.metric, constraint, epsilon=0.1, greedy_augmentation=False)
                .run(dataset.stream(seed=seed))
                .diversity
            )
        assert greedy_total >= plain_total * 0.95


class TestLocalSearchOnStreamingOutput:
    def test_refinement_improves_or_preserves(self):
        dataset = synthetic_blobs(n=600, m=3, seed=4)
        constraint = equal_representation(9, dataset.group_sizes().keys())
        result = SFDM2(dataset.metric, constraint, epsilon=0.1).run(dataset.stream(seed=5))
        reservoir = dataset.elements[::5]
        refined = local_search_improve(
            result.solution.elements,
            list(result.solution.elements) + reservoir,
            dataset.metric,
            constraint,
        )
        assert refined.is_fair
        assert refined.diversity >= result.diversity - 1e-12


class TestCoresetPipeline:
    def test_matches_constraint_on_blobs(self):
        dataset = synthetic_blobs(n=800, m=4, seed=6)
        constraint = equal_representation(12, dataset.group_sizes().keys())
        solution = coreset_fair_diversity(
            dataset.elements, dataset.metric, constraint, num_parts=8
        )
        assert solution.is_fair
        assert solution.size == 12
        assert solution.diversity > 0


class TestSlidingWindowPipeline:
    def test_windowed_solution_tracks_recent_data(self):
        dataset = synthetic_blobs(n=1_200, m=2, seed=9)
        constraint = equal_representation(8, dataset.group_sizes().keys())
        algorithm = CheckpointedWindowFDM(
            dataset.metric, constraint, window=300, blocks=6
        )
        solution = algorithm.run(dataset.elements)
        assert solution is not None
        assert solution.is_fair
        assert algorithm.stored_elements < 300
        # All selected elements come from (roughly) the last window of the stream.
        assert all(element.uid >= 1_200 - 2 * 300 for element in solution.elements)
