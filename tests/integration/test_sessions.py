"""Integration tests for long-lived streaming sessions."""

import numpy as np
import pytest

import repro
from repro.core.sfdm2 import SFDM2
from repro.utils.errors import (
    EmptyStreamError,
    InvalidParameterError,
    NoFeasibleSolutionError,
)


@pytest.fixture(scope="module")
def dataset():
    return repro.synthetic_blobs(n=300, m=2, seed=21)


@pytest.fixture(scope="module")
def constraint(dataset):
    return repro.equal_representation(6, list(dataset.group_sizes().keys()))


def _open(dataset, constraint, **kwargs):
    return repro.open_session(
        constraint=constraint, metric=dataset.metric, algorithm="SFDM2", **kwargs
    )


class TestStreamingSession:
    def test_matches_one_shot_run(self, dataset, constraint):
        direct = SFDM2(metric=dataset.metric, constraint=constraint).run(
            dataset.stream(seed=4)
        )
        session = _open(dataset, constraint)
        for element in dataset.stream(seed=4):
            session.offer(element)
        result = session.solution()
        assert [e.uid for e in result.solution.elements] == [
            e.uid for e in direct.solution.elements
        ]
        assert result.diversity == direct.diversity
        assert (
            result.stats.total_distance_computations
            == direct.stats.total_distance_computations
        )

    def test_queries_are_side_effect_free(self, dataset, constraint):
        queried = _open(dataset, constraint)
        silent = _open(dataset, constraint)
        for position, element in enumerate(dataset.stream(seed=9)):
            queried.offer(element)
            silent.offer(element)
            if position in (40, 150):
                queried.solution()  # mid-stream queries must not change anything
        a, b = queried.solution(), silent.solution()
        assert [e.uid for e in a.solution.elements] == [e.uid for e in b.solution.elements]
        assert (
            a.stats.total_distance_computations == b.stats.total_distance_computations
        )

    def test_repeated_final_queries_agree(self, dataset, constraint):
        session = _open(dataset, constraint)
        session.offer_batch(dataset.stream(seed=2))
        first, second = session.solution(), session.solution()
        assert [e.uid for e in first.solution.elements] == [
            e.uid for e in second.solution.elements
        ]
        assert (
            first.stats.total_distance_computations
            == second.stats.total_distance_computations
        )

    def test_query_during_warmup(self, dataset, constraint):
        session = _open(dataset, constraint)
        for element in list(dataset.stream(seed=1))[:30]:  # below warmup_size
            session.offer(element)
        assert not session.is_active
        result = session.solution()
        assert result.succeeded
        assert not session.is_active  # the query did not seal the warmup

    def test_offer_rows(self, constraint):
        rng = np.random.default_rng(3)
        session = repro.open_session(constraint=constraint, algorithm="SFDM2")
        session.offer_rows(
            rng.normal(size=(200, 3)), groups=rng.integers(0, 2, size=200)
        )
        assert session.elements_offered == 200
        assert session.solution().solution.is_fair

    def test_empty_session_raises(self, dataset, constraint):
        with pytest.raises(EmptyStreamError):
            _open(dataset, constraint).solution()

    def test_infeasible_state_raises(self, constraint):
        session = repro.open_session(constraint=constraint, algorithm="SFDM2")
        session.offer_rows(np.eye(3), groups=[0, 0, 0])  # group 1 never arrives
        with pytest.raises(NoFeasibleSolutionError):
            session.solution()

    def test_unconstrained_session(self):
        session = repro.open_session(k=4, algorithm="StreamingDM")
        session.offer_rows(np.random.default_rng(0).normal(size=(50, 2)))
        result = session.solution()
        assert result.algorithm == "StreamingDM"
        assert result.solution.size == 4

    def test_unconstrained_session_infers_k_from_constraint(self, constraint):
        # an explicit constraint supplies k even when the algorithm itself
        # is unconstrained, mirroring solve()
        session = repro.open_session(constraint=constraint, algorithm="StreamingDM")
        session.offer_rows(np.random.default_rng(1).normal(size=(60, 2)))
        assert session.solution().solution.size == constraint.total_size

    def test_session_spec_with_data_prefeeds(self, dataset, constraint):
        spec = repro.SolveSpec(
            data=dataset, constraint=constraint, algorithm="SFDM2", seed=4
        )
        session = repro.open_session(spec)
        assert session.elements_offered == dataset.size
        direct = SFDM2(metric=dataset.metric, constraint=constraint).run(
            dataset.stream(seed=4)
        )
        result = session.solution()
        assert [e.uid for e in result.solution.elements] == [
            e.uid for e in direct.solution.elements
        ]


class TestWindowSession:
    def test_window_session_tracks_window(self, dataset, constraint):
        session = repro.open_session(
            constraint=constraint,
            metric=dataset.metric,
            algorithm="WindowFDM",
            window=120,
            blocks=4,
        )
        for element in dataset.stream(seed=6):
            session.offer(element)
        result = session.solution()
        assert result.algorithm == "WindowFDM"
        assert result.succeeded and result.solution.is_fair
        assert result.stats.peak_stored_elements < dataset.size

    def test_window_session_requires_window(self, dataset, constraint):
        with pytest.raises(InvalidParameterError, match="window"):
            repro.open_session(
                constraint=constraint, metric=dataset.metric, algorithm="WindowFDM"
            )


class TestOpenSessionValidation:
    def test_non_session_algorithm_rejected(self, constraint):
        with pytest.raises(InvalidParameterError, match="does not support sessions"):
            repro.open_session(constraint=constraint, algorithm="GMM")

    def test_needs_constraint_or_groups(self):
        with pytest.raises(InvalidParameterError, match="groups"):
            repro.open_session(k=6, algorithm="SFDM2")

    def test_groups_build_equal_constraint(self):
        session = repro.open_session(k=6, groups=[0, 1], algorithm="SFDM2")
        rng = np.random.default_rng(8)
        session.offer_rows(rng.normal(size=(120, 2)), groups=rng.integers(0, 2, 120))
        assert session.solution().solution.is_fair

    def test_proportional_without_data_rejected(self):
        with pytest.raises(InvalidParameterError, match="proportional"):
            repro.open_session(
                k=6, groups=[0, 1], algorithm="SFDM2", fairness="proportional"
            )

    def test_resume_rejects_non_checkpoints(self, tmp_path):
        bad = tmp_path / "not-a-checkpoint.pkl"
        import pickle

        bad.write_bytes(pickle.dumps({"hello": "world"}))
        with pytest.raises(InvalidParameterError, match="checkpoint"):
            repro.resume(bad)

    def test_offer_rows_shape_validation(self, constraint):
        session = repro.open_session(constraint=constraint, algorithm="SFDM2")
        with pytest.raises(InvalidParameterError, match="group labels"):
            session.offer_rows(np.eye(3), groups=[0, 1])
