"""Golden-pin regression tests: every registry algorithm vs. tracked outputs.

Every registered algorithm runs on two seeded tiny datasets and its
solution uids, diversity, and distance accounting are asserted against the
tracked ``tests/golden/solutions.json``.  The point is cross-PR drift
protection: a refactor that silently changes any algorithm's output — a
reordered reduction, a different tie-break, a lost distance charge — fails
here with a readable diff instead of slipping through.

The case list is driven off the registry, so registering a new built-in
without recording its golden entries fails loudly.  After an *intentional*
behaviour change, regenerate the file with ``make golden`` (which runs
``python tests/integration/test_golden_solutions.py --write``) and commit
the JSON diff for review.
"""

import json
import sys
from pathlib import Path

import pytest

import repro
from repro.datasets.synthetic import synthetic_blobs

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "golden" / "solutions.json"

K = 6
SEED = 7
EPSILON = 0.1

#: The two seeded tiny datasets every algorithm is pinned on.
DATASETS = {
    "blobs-m2": lambda: synthetic_blobs(n=140, m=2, seed=101),
    "blobs-m3": lambda: synthetic_blobs(n=150, m=3, seed=202),
}

#: Options forwarded to solve() per algorithm (defaults elsewhere).
OPTIONS = {
    "ParallelFDM": {"shards": 3, "backend": "serial"},
    "Coreset": {"num_parts": 3},
    "SlidingWindowFDM": {"window": 80, "blocks": 4},
    "WindowFDM": {"blocks": 4},
}


def _cases():
    """Every (dataset, algorithm) pair within the algorithm's capabilities."""
    cases = []
    for dataset_key, factory in DATASETS.items():
        num_groups = factory().num_groups
        for name in repro.algorithm_names():
            entry = repro.get_algorithm(name)
            if not entry.capabilities.supports_groups(num_groups):
                continue
            cases.append((dataset_key, name))
    return cases


def _compute_record(dataset_key, name):
    """The golden record of one case: uids, diversity, and accounting."""
    dataset = DATASETS[dataset_key]()
    result = repro.solve(
        dataset,
        k=K,
        algorithm=name,
        epsilon=EPSILON,
        seed=SEED,
        **OPTIONS.get(name, {}),
    )
    assert result.solution is not None, f"{name} found no solution on {dataset_key}"
    return {
        "uids": [int(uid) for uid in result.solution.uids],
        "diversity": float(result.solution.diversity),
        "distance_computations": int(result.stats.total_distance_computations),
        "elements_processed": int(result.stats.elements_processed),
    }


def write_golden():
    """Regenerate the tracked golden file from the current registry."""
    golden = {
        "k": K,
        "seed": SEED,
        "epsilon": EPSILON,
        "entries": {
            f"{dataset_key}/{name}": _compute_record(dataset_key, name)
            for dataset_key, name in _cases()
        },
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    return golden


@pytest.fixture(scope="module")
def golden():
    if not GOLDEN_PATH.exists():
        pytest.fail(f"missing golden file {GOLDEN_PATH}; run `make golden`")
    return json.loads(GOLDEN_PATH.read_text())


def test_every_registered_algorithm_is_pinned(golden):
    """Registering a new algorithm without golden entries fails loudly."""
    expected = {f"{dataset_key}/{name}" for dataset_key, name in _cases()}
    assert set(golden["entries"]) == expected, (
        "golden case list is out of date; run `make golden` and review the diff"
    )


@pytest.mark.parametrize(
    "dataset_key,name", _cases(), ids=[f"{d}/{n}" for d, n in _cases()]
)
def test_solution_matches_golden(dataset_key, name, golden):
    """Uids, diversity, and distance accounting match the tracked values."""
    recorded = golden["entries"].get(f"{dataset_key}/{name}")
    assert recorded is not None, f"no golden entry for {dataset_key}/{name}; run `make golden`"
    fresh = _compute_record(dataset_key, name)
    assert fresh["uids"] == recorded["uids"], (
        f"{name} on {dataset_key} drifted; if intentional, run `make golden`"
    )
    assert fresh["distance_computations"] == recorded["distance_computations"]
    assert fresh["elements_processed"] == recorded["elements_processed"]
    assert fresh["diversity"] == pytest.approx(recorded["diversity"], rel=1e-9)


def _indexed_cases():
    """Every golden case whose algorithm declares the ``index`` option."""
    return [
        (dataset_key, name)
        for dataset_key, name in _cases()
        if "index" in repro.get_algorithm(name).capabilities.options
    ]


@pytest.mark.parametrize(
    "dataset_key,name",
    _indexed_cases(),
    ids=[f"{d}/{n}" for d, n in _indexed_cases()],
)
def test_indexed_solution_matches_golden(dataset_key, name, golden):
    """``index="kd"`` reproduces the pinned solution of the brute run.

    Only uids and diversity are asserted: the pins were recorded on the
    brute-force path, and the indexed path intentionally charges fewer
    distance evaluations (the differential suite bounds the counts).
    The pinned file is NOT regenerated for this — the whole point is
    that the index layer changes accounting, never solutions.
    """
    recorded = golden["entries"].get(f"{dataset_key}/{name}")
    assert recorded is not None, f"no golden entry for {dataset_key}/{name}; run `make golden`"
    dataset = DATASETS[dataset_key]()
    result = repro.solve(
        dataset,
        k=K,
        algorithm=name,
        epsilon=EPSILON,
        seed=SEED,
        index="kd",
        **OPTIONS.get(name, {}),
    )
    assert result.solution is not None, f"{name} found no solution on {dataset_key}"
    assert [int(uid) for uid in result.solution.uids] == recorded["uids"], (
        f"indexed {name} on {dataset_key} diverged from the pinned solution"
    )
    assert float(result.solution.diversity) == pytest.approx(
        recorded["diversity"], rel=1e-9
    )


if __name__ == "__main__":  # pragma: no cover - exercised via `make golden`
    if "--write" not in sys.argv:
        print("usage: python tests/integration/test_golden_solutions.py --write")
        raise SystemExit(2)
    data = write_golden()
    print(f"wrote {len(data['entries'])} golden entries to {GOLDEN_PATH}")
