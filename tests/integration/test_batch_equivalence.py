"""Batch-mode and element-mode streaming runs must produce identical output.

The vectorized batch ingestion path only reschedules the arithmetic of the
paper's update rule — every accept/reject decision is the same as the
element-at-a-time path on the same stream order.  These tests pin that
equivalence end-to-end for all three streaming algorithms and for the
vectorized offline helpers.
"""

import numpy as np
import pytest

from repro.baselines.gmm import gmm_elements
from repro.core.candidate import Candidate
from repro.core.postprocess import greedy_fair_fill
from repro.core.sfdm1 import SFDM1
from repro.core.sfdm2 import SFDM2
from repro.core.streaming_dm import StreamingDiversityMaximization
from repro.datasets.synthetic import synthetic_blobs
from repro.fairness.constraints import equal_representation
from repro.metrics.base import CallableMetric
from repro.metrics.vector import EuclideanMetric
from repro.data.element import Element
from repro.utils.errors import InvalidParameterError


@pytest.fixture(scope="module")
def dataset():
    return synthetic_blobs(n=1_500, m=2, seed=11)


@pytest.fixture(scope="module")
def constraint(dataset):
    return equal_representation(8, list(dataset.group_sizes().keys()))


def _scalar_euclidean():
    """The Euclidean formula without batch kernels (forces the scalar path)."""
    inner = EuclideanMetric()
    return CallableMetric(inner.distance, name="scalar-euclidean")


class TestStreamingEquivalence:
    @pytest.mark.parametrize("batch_size", [64, 256, 1_024])
    def test_sfdm2_batch_matches_element(self, dataset, constraint, batch_size):
        element = SFDM2(metric=dataset.metric, constraint=constraint).run(dataset.stream(seed=1))
        batch = SFDM2(
            metric=dataset.metric, constraint=constraint, batch_size=batch_size
        ).run(dataset.stream(seed=1))
        assert sorted(element.solution.uids) == sorted(batch.solution.uids)
        assert element.solution.diversity == pytest.approx(batch.solution.diversity)

    def test_sfdm1_batch_matches_element(self, dataset, constraint):
        element = SFDM1(metric=dataset.metric, constraint=constraint).run(dataset.stream(seed=2))
        batch = SFDM1(metric=dataset.metric, constraint=constraint, batch_size=128).run(
            dataset.stream(seed=2)
        )
        assert sorted(element.solution.uids) == sorted(batch.solution.uids)
        assert element.solution.diversity == pytest.approx(batch.solution.diversity)

    def test_streaming_dm_batch_matches_element(self, dataset):
        element = StreamingDiversityMaximization(metric=dataset.metric, k=6).run(
            dataset.stream(seed=3)
        )
        batch = StreamingDiversityMaximization(
            metric=dataset.metric, k=6, batch_size=200
        ).run(dataset.stream(seed=3))
        assert sorted(element.solution.uids) == sorted(batch.solution.uids)

    def test_batch_mode_recorded_in_stats(self, dataset, constraint):
        result = SFDM2(
            metric=dataset.metric, constraint=constraint, batch_size=256
        ).run(dataset.stream(seed=4))
        assert result.stats.extra.get("batch_size") == 256.0

    def test_scalar_metric_falls_back_silently(self, dataset, constraint):
        """A batch_size with a kernel-less metric must still work (scalar path)."""
        metric = _scalar_euclidean()
        element = SFDM2(metric=metric, constraint=constraint).run(dataset.stream(seed=5))
        batch = SFDM2(metric=metric, constraint=constraint, batch_size=128).run(
            dataset.stream(seed=5)
        )
        assert sorted(element.solution.uids) == sorted(batch.solution.uids)
        # The fallback never enters the batched path, so it is not recorded.
        assert "batch_size" not in batch.stats.extra

    def test_invalid_batch_size_rejected(self, dataset, constraint):
        with pytest.raises(InvalidParameterError):
            SFDM2(metric=dataset.metric, constraint=constraint, batch_size=0)


class TestCandidateOfferBatch:
    def _elements(self):
        rng = np.random.default_rng(7)
        points = rng.normal(size=(200, 3))
        return [Element(uid=i, vector=points[i], group=i % 2) for i in range(len(points))]

    def test_matches_sequential_offers(self):
        elements = self._elements()
        metric = EuclideanMetric()
        sequential = Candidate(mu=1.5, capacity=10, metric=metric)
        for element in elements:
            sequential.offer(element)
        batched = Candidate(mu=1.5, capacity=10, metric=metric)
        accepted = 0
        for start in range(0, len(elements), 32):
            accepted += batched.offer_batch(elements[start : start + 32])
        assert [e.uid for e in batched] == [e.uid for e in sequential]
        assert accepted == len(sequential)

    def test_group_restriction(self):
        elements = self._elements()
        metric = EuclideanMetric()
        candidate = Candidate(mu=0.5, capacity=5, metric=metric, group=1)
        candidate.offer_batch(elements[:64])
        assert all(element.group == 1 for element in candidate)

    def test_full_candidate_rejects_batch(self):
        elements = self._elements()
        metric = EuclideanMetric()
        candidate = Candidate(mu=0.0001, capacity=3, metric=metric)
        candidate.offer_batch(elements[:10])
        assert len(candidate) == 3
        assert candidate.offer_batch(elements[10:20]) == 0


class TestOfflineHelpersEquivalence:
    def test_gmm_batched_matches_scalar(self, dataset):
        pool = dataset.elements[:400]
        fast = gmm_elements(pool, EuclideanMetric(), k=12)
        slow = gmm_elements(pool, _scalar_euclidean(), k=12)
        assert [e.uid for e in fast] == [e.uid for e in slow]

    def test_greedy_fair_fill_batched_matches_scalar(self, dataset, constraint):
        pool = dataset.elements[:300]
        fast = greedy_fair_fill(pool, constraint, EuclideanMetric())
        slow = greedy_fair_fill(pool, constraint, _scalar_euclidean())
        assert [e.uid for e in fast] == [e.uid for e in slow]
