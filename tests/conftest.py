"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import synthetic_blobs, uniform_points
from repro.fairness.constraints import equal_representation
from repro.metrics.vector import EuclideanMetric, ManhattanMetric
from repro.data.element import Element
from repro.streaming.stream import DataStream


@pytest.fixture
def euclidean_metric() -> EuclideanMetric:
    """The Euclidean metric."""
    return EuclideanMetric()


@pytest.fixture
def manhattan_metric() -> ManhattanMetric:
    """The Manhattan metric."""
    return ManhattanMetric()


@pytest.fixture
def grid_elements() -> list:
    """A deterministic 4x4 grid of points split into two groups by column parity.

    Small enough for brute-force oracles, structured enough that optimal
    solutions are easy to reason about by hand.
    """
    elements = []
    uid = 0
    for x in range(4):
        for y in range(4):
            elements.append(Element(uid=uid, vector=np.array([float(x), float(y)]), group=x % 2))
            uid += 1
    return elements


@pytest.fixture
def grid_stream(grid_elements) -> DataStream:
    """The grid elements as a stream (canonical order)."""
    return DataStream(grid_elements, name="grid")


@pytest.fixture
def two_group_dataset():
    """A small two-group Gaussian-blob dataset."""
    return synthetic_blobs(n=300, m=2, seed=11)


@pytest.fixture
def five_group_dataset():
    """A small five-group Gaussian-blob dataset."""
    return synthetic_blobs(n=300, m=5, seed=13)


@pytest.fixture
def unit_square_dataset():
    """Uniform points in the unit square with two groups."""
    return uniform_points(n=120, m=2, seed=5)


@pytest.fixture
def small_constraint(two_group_dataset):
    """An equal-representation constraint of size 8 for the two-group dataset."""
    return equal_representation(k=8, groups=two_group_dataset.group_sizes().keys())
