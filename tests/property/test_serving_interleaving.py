"""Property: concurrent multi-tenant traffic never cross-contaminates.

N sessions fed round-robin — with randomized chunk sizes, interleaved
solution queries, and concurrent asyncio producers — must each end up
byte-identical (uids, diversity, distance counts) to the same session
fed alone, serially, with the whole stream in one call.  This is the
serving layer's isolation guarantee: micro-batch queues, flush timers,
and the shared LRU are per-session; tenants only share wall-clock.
"""

import asyncio
import random

import numpy as np
import pytest

from repro.datasets.synthetic import synthetic_blobs
from repro.serving import ManagerConfig, SessionManager

K = 4
N_SESSIONS = 4
SEEDS = (3, 11)


@pytest.fixture(scope="module")
def streams():
    """One distinct (features, groups) stream per session."""
    per_session = []
    for index in range(N_SESSIONS):
        dataset = synthetic_blobs(n=160, m=2, seed=23 + index)
        features = np.asarray(
            [element.vector for element in dataset.elements], dtype=float
        )
        groups = np.asarray([int(element.group) for element in dataset.elements])
        per_session.append((features, groups))
    return per_session


def _fingerprint(result):
    return (
        list(result.solution.uids),
        result.diversity,
        result.stats.total_distance_computations,
        result.stats.elements_processed,
    )


def _config(tmp_path, tag, **overrides):
    defaults = dict(
        state_dir=tmp_path / tag,
        max_live=2,  # below N_SESSIONS: interleaving also churns the LRU
        max_batch=48,
        flush_ms=60_000.0,
    )
    defaults.update(overrides)
    return ManagerConfig(**defaults)


async def _solo_reference(tmp_path, streams):
    """Each session alone in its own manager, whole stream in one offer."""
    fingerprints = []
    for index, (features, groups) in enumerate(streams):
        manager = SessionManager(_config(tmp_path, f"solo-{index}", max_live=64))
        await manager.create(k=K, groups=2, name="only")
        await manager.offer("only", features, groups=groups)
        fingerprints.append(_fingerprint(await manager.solution("only")))
    return fingerprints


@pytest.mark.parametrize("seed", SEEDS)
def test_round_robin_interleaving_matches_solo_runs(tmp_path, streams, seed):
    rng = random.Random(seed)

    async def scenario():
        manager = SessionManager(_config(tmp_path, f"rr-{seed}"))
        names = []
        for index in range(N_SESSIONS):
            names.append(await manager.create(k=K, groups=2, name=f"rr{index}"))
        cursors = [0] * N_SESSIONS
        while any(cursors[i] < len(streams[i][0]) for i in range(N_SESSIONS)):
            index = rng.randrange(N_SESSIONS)
            features, groups = streams[index]
            if cursors[index] >= len(features):
                continue
            step = rng.randint(1, 37)
            start, stop = cursors[index], min(cursors[index] + step, len(features))
            await manager.offer(
                names[index], features[start:stop], groups=groups[start:stop]
            )
            cursors[index] = stop
            if rng.random() < 0.15 and cursors[index] > 20:
                await manager.solution(names[index])  # interleaved pure query
        return [_fingerprint(await manager.solution(name)) for name in names]

    interleaved = asyncio.run(scenario())
    solo = asyncio.run(_solo_reference(tmp_path, streams))
    assert interleaved == solo


def test_concurrent_async_producers_match_solo_runs(tmp_path, streams):
    """N concurrent producer tasks (true asyncio interleaving) stay isolated."""

    async def producer(manager, name, features, groups, rng):
        cursor = 0
        while cursor < len(features):
            step = rng.randint(1, 29)
            stop = min(cursor + step, len(features))
            await manager.offer(name, features[cursor:stop], groups=groups[cursor:stop])
            cursor = stop
            await asyncio.sleep(0)  # yield so producers interleave

    async def scenario():
        manager = SessionManager(_config(tmp_path, "conc"))
        names = []
        for index in range(N_SESSIONS):
            names.append(await manager.create(k=K, groups=2, name=f"c{index}"))
        await asyncio.gather(
            *(
                producer(manager, names[i], *streams[i], random.Random(100 + i))
                for i in range(N_SESSIONS)
            )
        )
        return [_fingerprint(await manager.solution(name)) for name in names]

    concurrent = asyncio.run(scenario())
    solo = asyncio.run(_solo_reference(tmp_path, streams))
    assert concurrent == solo
