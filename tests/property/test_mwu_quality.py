"""Property tests for the MWU + LP-rounding quality oracle.

On seeded small instances (n <= 25, 2-4 groups, three metrics) the oracle
must be: always feasible, deterministic per seed, at least as diverse as
the streaming algorithms, and within 10% of the brute-force optimum
(:func:`exact_fdm`).  The instances are generated from fixed seeds, so
every assertion here is reproducible — a passing configuration stays
passing.
"""

import numpy as np
import pytest

import repro
from repro.baselines.exact import exact_fdm
from repro.baselines.mwu import mwu_fair
from repro.data.element import Element
from repro.data.store import ElementStore
from repro.fairness.constraints import FairnessConstraint
from repro.metrics.vector import AngularMetric, EuclideanMetric, ManhattanMetric
from repro.utils.errors import InvalidParameterError

METRICS = {
    "euclidean": EuclideanMetric(),
    "manhattan": ManhattanMetric(),
    "angular": AngularMetric(),
}

SEEDS = (3, 11, 29)
GROUP_COUNTS = (2, 3, 4)

CONFIGS = [
    pytest.param(seed, m, name, id=f"seed{seed}-m{m}-{name}")
    for seed in SEEDS
    for m in GROUP_COUNTS
    for name in METRICS
]


def _instance(seed, m):
    """A seeded random instance: n <= 25 positive points, feasible quotas."""
    rng = np.random.default_rng(seed + 1_000 * m)
    n = int(rng.integers(4 * m, 26))
    quotas = {group: int(rng.integers(1, 3)) for group in range(m)}
    groups = rng.integers(0, m, size=n)
    slot = 0
    for group, quota in quotas.items():
        for _ in range(quota):
            groups[slot] = group
            slot += 1
    # Positive coordinates keep the angular metric well-defined.
    points = rng.uniform(0.5, 10.0, size=(n, 3))
    elements = [
        Element(uid=i, vector=points[i], group=int(groups[i])) for i in range(n)
    ]
    return elements, FairnessConstraint(quotas)


class TestMWUQuality:
    @pytest.mark.parametrize("seed,m,metric_name", CONFIGS)
    def test_feasible_and_within_10pct_of_exact(self, seed, m, metric_name):
        """MWU output is fair and achieves >= 0.9x the exact optimum."""
        metric = METRICS[metric_name]
        elements, constraint = _instance(seed, m)
        _, exact_div = exact_fdm(elements, metric, constraint)
        result = mwu_fair(elements, metric, constraint, seed=seed)
        assert result.solution.is_fair
        assert result.solution.size == constraint.total_size
        assert result.solution.diversity >= 0.9 * exact_div

    @pytest.mark.parametrize("seed,m,metric_name", CONFIGS)
    def test_at_least_as_diverse_as_streaming(self, seed, m, metric_name):
        """MWU dominates the best streaming algorithm on the same instance."""
        metric = METRICS[metric_name]
        elements, constraint = _instance(seed, m)
        result = mwu_fair(elements, metric, constraint, seed=seed)
        streaming = ["SFDM2"] + (["SFDM1"] if m == 2 else [])
        best = max(
            repro.solve(
                elements,
                metric=metric,
                constraint=constraint,
                algorithm=algorithm,
                seed=seed,
            ).solution.diversity
            for algorithm in streaming
        )
        assert result.solution.diversity >= best - 1e-9

    @pytest.mark.parametrize("seed", SEEDS)
    def test_deterministic_per_seed(self, seed):
        """Same seed, same run: identical uids, diversity, and accounting."""
        elements, constraint = _instance(seed, 3)
        metric = METRICS["euclidean"]
        first = mwu_fair(elements, metric, constraint, seed=seed)
        second = mwu_fair(elements, metric, constraint, seed=seed)
        assert first.solution.uids == second.solution.uids
        assert first.solution.diversity == second.solution.diversity
        assert (
            first.stats.stream_distance_computations
            == second.stats.stream_distance_computations
        )

    def test_store_and_sequence_inputs_agree(self):
        """An ElementStore pool selects the same uids as the element list."""
        elements, constraint = _instance(3, 2)
        metric = METRICS["euclidean"]
        store = ElementStore.from_elements(elements)
        from_list = mwu_fair(elements, metric, constraint, seed=5)
        from_store = mwu_fair(store, metric, constraint, seed=5)
        assert from_list.solution.uids == from_store.solution.uids
        assert (
            from_list.stats.stream_distance_computations
            == from_store.stats.stream_distance_computations
        )

    def test_registry_dispatch_matches_direct_call(self):
        """`repro.solve(..., algorithm="MWU")` equals the direct invocation."""
        elements, constraint = _instance(11, 2)
        direct = mwu_fair(
            elements, METRICS["euclidean"], constraint, epsilon=0.1, seed=7
        )
        dispatched = repro.solve(
            elements,
            metric=METRICS["euclidean"],
            constraint=constraint,
            algorithm="MWU",
            epsilon=0.1,
            seed=7,
        )
        assert dispatched.solution.uids == direct.solution.uids
        assert (
            dispatched.stats.stream_distance_computations
            == direct.stats.stream_distance_computations
        )


class TestMWURejections:
    def _solve(self, **kwargs):
        elements, constraint = _instance(3, 2)
        return repro.solve(
            elements,
            metric=METRICS["euclidean"],
            constraint=constraint,
            algorithm="MWU",
            **kwargs,
        )

    @pytest.mark.parametrize("iterations", [0, -1, 1.5, "many"])
    def test_invalid_iterations_rejected(self, iterations):
        with pytest.raises(InvalidParameterError):
            self._solve(iterations=iterations)

    @pytest.mark.parametrize("rounds", [0, -3])
    def test_invalid_rounds_rejected(self, rounds):
        with pytest.raises(InvalidParameterError):
            self._solve(rounds=rounds)

    @pytest.mark.parametrize("epsilon", [0.0, 1.0, 1.5, -0.1])
    def test_invalid_epsilon_rejected(self, epsilon):
        with pytest.raises(InvalidParameterError):
            self._solve(epsilon=epsilon)

    def test_unknown_option_rejected(self):
        with pytest.raises(InvalidParameterError):
            self._solve(bogus=1)
