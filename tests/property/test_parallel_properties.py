"""Property tests for the parallel engine's core guarantees.

Three families:

* **backend transparency** — for a fixed ``(stream seed, shards,
  strategy, run seed)`` the computed solution is identical on every
  backend: the backend decides where shard summaries run, never what
  they compute.  Serial vs. thread is exercised densely via Hypothesis;
  the process backend (which forks worker processes) is pinned with a
  representative parametrised matrix to keep the suite fast.

* **transport and planner transparency** — shipping shards through the
  shared-memory block vs. pickled stores, and letting the execution
  planner pick the backend/shard count (``"auto"``), are equally
  invisible: uids, diversity values, and charged distance counts all
  match the serial reference exactly.

* **composable-coreset quality** — the diversity obtained through the
  sharded merge-tree route stays within the composable-coreset factor of
  the sequential coreset run on the same data.  The library's sequential
  reference is :func:`repro.core.coreset.coreset_fair_diversity`; Indyk
  et al.'s bound says solving on unioned per-part GMM summaries loses at
  most a constant factor (3 for max-min diversity), which the merge tree
  preserves per level — we assert the end-to-end factor-3 envelope both
  ways, since neither route dominates the other pointwise.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coreset import coreset_fair_diversity
from repro.datasets.synthetic import synthetic_blobs
from repro.fairness.constraints import equal_representation
from repro.parallel import ParallelFDM

#: The composable-coreset approximation envelope for max-min diversity.
CORESET_FACTOR = 3.0


def _dataset(n, m, seed):
    return synthetic_blobs(n=n, m=m, seed=seed)


def _run(
    dataset,
    constraint,
    shards,
    backend,
    strategy,
    seed,
    summarizer="gmm",
    transport="auto",
):
    return ParallelFDM(
        metric=dataset.metric,
        constraint=constraint,
        shards=shards,
        backend=backend,
        strategy=strategy,
        summarizer=summarizer,
        transport=transport,
        seed=seed,
    ).run(dataset.stream(seed=seed))


class TestBackendTransparency:
    @settings(max_examples=12, deadline=None)
    @given(
        shards=st.integers(min_value=1, max_value=6),
        strategy=st.sampled_from(["contiguous", "stratified"]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        m=st.integers(min_value=2, max_value=4),
    )
    def test_thread_equals_serial(self, shards, strategy, seed, m):
        dataset = _dataset(150, m, seed=7)
        constraint = equal_representation(2 * m, list(dataset.group_sizes()))
        serial = _run(dataset, constraint, shards, "serial", strategy, seed)
        threaded = _run(dataset, constraint, shards, "thread", strategy, seed)
        assert serial.solution.uids == threaded.solution.uids
        assert serial.solution.diversity == pytest.approx(threaded.solution.diversity)

    @pytest.mark.parametrize("shards", [1, 3, 4])
    @pytest.mark.parametrize("summarizer", ["gmm", "stream"])
    def test_process_equals_serial(self, shards, summarizer):
        dataset = _dataset(240, 2, seed=11)
        constraint = equal_representation(6, list(dataset.group_sizes()))
        serial = _run(
            dataset, constraint, shards, "serial", "stratified", seed=5,
            summarizer=summarizer,
        )
        process = _run(
            dataset, constraint, shards, "process", "stratified", seed=5,
            summarizer=summarizer,
        )
        assert serial.solution.uids == process.solution.uids
        assert serial.solution.diversity == pytest.approx(process.solution.diversity)

    @settings(max_examples=8, deadline=None)
    @given(
        shards=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_solution_is_always_fair_across_shard_counts(self, shards, seed):
        dataset = _dataset(120, 3, seed=3)
        constraint = equal_representation(6, list(dataset.group_sizes()))
        result = _run(dataset, constraint, shards, "serial", "stratified", seed)
        assert result.solution is not None
        assert result.solution.is_fair


class TestTransportTransparency:
    """The shard transport moves bytes, never changes what they compute."""

    @pytest.mark.parametrize("shards", [1, 3, 5])
    @pytest.mark.parametrize("seed", [0, 17])
    def test_shm_equals_pickle_on_process_backend(self, shards, seed):
        dataset = _dataset(240, 3, seed=9)
        constraint = equal_representation(6, list(dataset.group_sizes()))
        shm = _run(
            dataset, constraint, shards, "process", "stratified", seed,
            transport="shm",
        )
        pickled = _run(
            dataset, constraint, shards, "process", "stratified", seed,
            transport="pickle",
        )
        assert shm.params["transport"] in ("shm", "pickle")
        assert pickled.params["transport"] == "pickle"
        assert shm.solution.uids == pickled.solution.uids
        assert shm.solution.diversity == pickled.solution.diversity
        assert (
            shm.stats.stream_distance_computations
            == pickled.stats.stream_distance_computations
        )
        assert (
            shm.stats.postprocess_distance_computations
            == pickled.stats.postprocess_distance_computations
        )

    @pytest.mark.parametrize("transport", ["auto", "shm", "pickle"])
    def test_every_transport_matches_the_serial_reference(self, transport):
        dataset = _dataset(200, 2, seed=13)
        constraint = equal_representation(6, list(dataset.group_sizes()))
        serial = _run(dataset, constraint, 4, "serial", "stratified", seed=2)
        process = _run(
            dataset, constraint, 4, "process", "stratified", seed=2,
            transport=transport,
        )
        assert serial.solution.uids == process.solution.uids
        assert serial.solution.diversity == process.solution.diversity
        assert (
            serial.stats.stream_distance_computations
            == process.stats.stream_distance_computations
        )

    def test_stream_summarizer_identical_across_transports(self):
        dataset = _dataset(300, 2, seed=23)
        constraint = equal_representation(6, list(dataset.group_sizes()))
        runs = [
            _run(
                dataset, constraint, 4, backend, "stratified", seed=8,
                summarizer="stream", transport=transport,
            )
            for backend, transport in (
                ("serial", "auto"),
                ("process", "shm"),
                ("process", "pickle"),
            )
        ]
        uids = {tuple(run.solution.uids) for run in runs}
        counts = {run.stats.stream_distance_computations for run in runs}
        assert len(uids) == 1 and len(counts) == 1


class TestAutoPlanning:
    """``"auto"`` picks where to run; the answer must not depend on it."""

    def test_auto_backend_matches_explicit_configuration(self):
        from repro.parallel import ExecutionPlanner

        dataset = _dataset(180, 2, seed=31)
        constraint = equal_representation(6, list(dataset.group_sizes()))
        auto = ParallelFDM(
            metric=dataset.metric,
            constraint=constraint,
            shards="auto",
            backend="auto",
            seed=4,
        ).run(dataset.stream(seed=4))
        planned = ExecutionPlanner().plan(180, dim=2)
        explicit = _run(
            dataset, constraint, planned.shards, planned.backend, "stratified",
            seed=4,
        )
        assert auto.params["shards"] == planned.shards
        assert auto.params["backend"] == planned.backend
        assert auto.params["plan"] == planned.reason
        assert auto.solution.uids == explicit.solution.uids
        assert auto.solution.diversity == explicit.solution.diversity

    def test_forced_multicore_auto_plan_is_solution_transparent(self):
        from repro.parallel import ExecutionPlanner

        dataset = _dataset(220, 2, seed=37)
        constraint = equal_representation(6, list(dataset.group_sizes()))
        # A planner pretending to see 4 CPUs and a tiny cutoff must pick the
        # process backend — and still reproduce the serial answer exactly.
        planner = ExecutionPlanner(serial_cutoff=2, rows_per_shard=64, cpus=4)
        auto = ParallelFDM(
            metric=dataset.metric,
            constraint=constraint,
            shards="auto",
            backend="auto",
            planner=planner,
            seed=6,
        ).run(dataset.stream(seed=6))
        assert auto.params["backend"] == "process"
        reference = _run(
            dataset, constraint, auto.params["shards"], "serial", "stratified",
            seed=6,
        )
        assert auto.solution.uids == reference.solution.uids
        assert (
            auto.stats.stream_distance_computations
            == reference.stats.stream_distance_computations
        )


class TestComposableCoresetQuality:
    @settings(max_examples=10, deadline=None)
    @given(
        shards=st.integers(min_value=2, max_value=8),
        data_seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_merged_coreset_diversity_within_factor_of_sequential(
        self, shards, data_seed
    ):
        dataset = _dataset(200, 2, seed=data_seed)
        constraint = equal_representation(6, list(dataset.group_sizes()))
        parallel = _run(dataset, constraint, shards, "serial", "stratified", seed=None)
        sequential = coreset_fair_diversity(
            dataset.elements, dataset.metric, constraint, num_parts=shards
        )
        assert parallel.solution.is_fair and sequential.is_fair
        assert parallel.solution.diversity >= sequential.diversity / CORESET_FACTOR
        assert sequential.diversity >= parallel.solution.diversity / CORESET_FACTOR

    def test_deep_merge_tree_preserves_quality(self):
        # 16 shards -> a 4-level merge tree; quality must not decay with depth.
        dataset = _dataset(400, 2, seed=21)
        constraint = equal_representation(8, list(dataset.group_sizes()))
        sharded = _run(dataset, constraint, 16, "serial", "stratified", seed=None)
        unsharded = _run(dataset, constraint, 1, "serial", "stratified", seed=None)
        assert sharded.solution.is_fair
        assert sharded.solution.diversity >= unsharded.solution.diversity / CORESET_FACTOR
