"""Property tests for the parallel engine's core guarantees.

Two families:

* **backend transparency** — for a fixed ``(stream seed, shards,
  strategy, run seed)`` the computed solution is identical on every
  backend: the backend decides where shard summaries run, never what
  they compute.  Serial vs. thread is exercised densely via Hypothesis;
  the process backend (which forks worker processes) is pinned with a
  representative parametrised matrix to keep the suite fast.

* **composable-coreset quality** — the diversity obtained through the
  sharded merge-tree route stays within the composable-coreset factor of
  the sequential coreset run on the same data.  The library's sequential
  reference is :func:`repro.core.coreset.coreset_fair_diversity`; Indyk
  et al.'s bound says solving on unioned per-part GMM summaries loses at
  most a constant factor (3 for max-min diversity), which the merge tree
  preserves per level — we assert the end-to-end factor-3 envelope both
  ways, since neither route dominates the other pointwise.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coreset import coreset_fair_diversity
from repro.datasets.synthetic import synthetic_blobs
from repro.fairness.constraints import equal_representation
from repro.parallel import ParallelFDM

#: The composable-coreset approximation envelope for max-min diversity.
CORESET_FACTOR = 3.0


def _dataset(n, m, seed):
    return synthetic_blobs(n=n, m=m, seed=seed)


def _run(dataset, constraint, shards, backend, strategy, seed, summarizer="gmm"):
    return ParallelFDM(
        metric=dataset.metric,
        constraint=constraint,
        shards=shards,
        backend=backend,
        strategy=strategy,
        summarizer=summarizer,
        seed=seed,
    ).run(dataset.stream(seed=seed))


class TestBackendTransparency:
    @settings(max_examples=12, deadline=None)
    @given(
        shards=st.integers(min_value=1, max_value=6),
        strategy=st.sampled_from(["contiguous", "stratified"]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        m=st.integers(min_value=2, max_value=4),
    )
    def test_thread_equals_serial(self, shards, strategy, seed, m):
        dataset = _dataset(150, m, seed=7)
        constraint = equal_representation(2 * m, list(dataset.group_sizes()))
        serial = _run(dataset, constraint, shards, "serial", strategy, seed)
        threaded = _run(dataset, constraint, shards, "thread", strategy, seed)
        assert serial.solution.uids == threaded.solution.uids
        assert serial.solution.diversity == pytest.approx(threaded.solution.diversity)

    @pytest.mark.parametrize("shards", [1, 3, 4])
    @pytest.mark.parametrize("summarizer", ["gmm", "stream"])
    def test_process_equals_serial(self, shards, summarizer):
        dataset = _dataset(240, 2, seed=11)
        constraint = equal_representation(6, list(dataset.group_sizes()))
        serial = _run(
            dataset, constraint, shards, "serial", "stratified", seed=5,
            summarizer=summarizer,
        )
        process = _run(
            dataset, constraint, shards, "process", "stratified", seed=5,
            summarizer=summarizer,
        )
        assert serial.solution.uids == process.solution.uids
        assert serial.solution.diversity == pytest.approx(process.solution.diversity)

    @settings(max_examples=8, deadline=None)
    @given(
        shards=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_solution_is_always_fair_across_shard_counts(self, shards, seed):
        dataset = _dataset(120, 3, seed=3)
        constraint = equal_representation(6, list(dataset.group_sizes()))
        result = _run(dataset, constraint, shards, "serial", "stratified", seed)
        assert result.solution is not None
        assert result.solution.is_fair


class TestComposableCoresetQuality:
    @settings(max_examples=10, deadline=None)
    @given(
        shards=st.integers(min_value=2, max_value=8),
        data_seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_merged_coreset_diversity_within_factor_of_sequential(
        self, shards, data_seed
    ):
        dataset = _dataset(200, 2, seed=data_seed)
        constraint = equal_representation(6, list(dataset.group_sizes()))
        parallel = _run(dataset, constraint, shards, "serial", "stratified", seed=None)
        sequential = coreset_fair_diversity(
            dataset.elements, dataset.metric, constraint, num_parts=shards
        )
        assert parallel.solution.is_fair and sequential.is_fair
        assert parallel.solution.diversity >= sequential.diversity / CORESET_FACTOR
        assert sequential.diversity >= parallel.solution.diversity / CORESET_FACTOR

    def test_deep_merge_tree_preserves_quality(self):
        # 16 shards -> a 4-level merge tree; quality must not decay with depth.
        dataset = _dataset(400, 2, seed=21)
        constraint = equal_representation(8, list(dataset.group_sizes()))
        sharded = _run(dataset, constraint, 16, "serial", "stratified", seed=None)
        unsharded = _run(dataset, constraint, 1, "serial", "stratified", seed=None)
        assert sharded.solution.is_fair
        assert sharded.solution.diversity >= unsharded.solution.diversity / CORESET_FACTOR
