"""Property-based tests for the streaming algorithms on random instances.

The invariants checked here are the ones the paper proves:

* every returned solution satisfies the fairness constraint exactly;
* the candidate invariant (pairwise distance >= mu) holds, so the returned
  diversity respects the approximation guarantee relative to the exact
  optimum on small instances when exact distance bounds are provided;
* the number of stored elements respects the O(k m log(Delta)/eps) bound.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact import exact_fdm
from repro.core.sfdm1 import SFDM1
from repro.core.sfdm2 import SFDM2
from repro.fairness.constraints import FairnessConstraint
from repro.metrics.space import exact_distance_bounds
from repro.metrics.vector import EuclideanMetric
from repro.data.element import Element
from repro.streaming.stream import DataStream

METRIC = EuclideanMetric()


@st.composite
def small_fair_instances(draw, max_groups: int = 3):
    """A random small instance: points on a 2-D integer grid with group labels."""
    m = draw(st.integers(min_value=2, max_value=max_groups))
    quotas = {group: draw(st.integers(min_value=1, max_value=2)) for group in range(m)}
    k = sum(quotas.values())
    n = draw(st.integers(min_value=k + m, max_value=14))
    coordinates = draw(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    groups = [draw(st.integers(0, m - 1)) for _ in range(n)]
    # Guarantee feasibility: overwrite the first sum(quotas) labels round-robin.
    index = 0
    for group, quota in quotas.items():
        for _ in range(quota):
            groups[index % n] = group
            index += 1
    elements = [
        Element(uid=i, vector=np.array([float(x), float(y)]), group=groups[i])
        for i, (x, y) in enumerate(coordinates)
    ]
    return elements, FairnessConstraint(quotas)


class TestSFDMProperties:
    @given(instance=small_fair_instances(max_groups=2))
    @settings(max_examples=25, deadline=None)
    def test_sfdm1_fair_and_within_guarantee(self, instance):
        elements, constraint = instance
        if constraint.num_groups != 2:
            return
        epsilon = 0.1
        d_min, d_max = exact_distance_bounds(elements, METRIC)
        result = SFDM1(
            METRIC, constraint, epsilon=epsilon, distance_bounds=(d_min, d_max)
        ).run(DataStream(elements))
        assert result.solution.is_fair
        _, optimum = exact_fdm(elements, METRIC, constraint)
        if result.solution.size >= 2 and np.isfinite(optimum):
            assert result.diversity >= (1 - epsilon) / 4 * optimum - 1e-9

    @given(instance=small_fair_instances(max_groups=3))
    @settings(max_examples=25, deadline=None)
    def test_sfdm2_fair_and_within_guarantee(self, instance):
        elements, constraint = instance
        epsilon = 0.1
        m = constraint.num_groups
        d_min, d_max = exact_distance_bounds(elements, METRIC)
        result = SFDM2(
            METRIC, constraint, epsilon=epsilon, distance_bounds=(d_min, d_max)
        ).run(DataStream(elements))
        assert result.solution.is_fair
        _, optimum = exact_fdm(elements, METRIC, constraint)
        if result.solution.size >= 2 and np.isfinite(optimum):
            assert result.diversity >= (1 - epsilon) / (3 * m + 2) * optimum - 1e-9

    @given(instance=small_fair_instances(max_groups=3), seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_sfdm2_fair_under_arbitrary_permutations(self, instance, seed):
        elements, constraint = instance
        result = SFDM2(METRIC, constraint, epsilon=0.2).run(
            DataStream(elements, shuffle_seed=seed)
        )
        assert result.solution.is_fair
        assert result.solution.size == constraint.total_size

    @given(instance=small_fair_instances(max_groups=3))
    @settings(max_examples=15, deadline=None)
    def test_space_bound_respected(self, instance):
        elements, constraint = instance
        epsilon = 0.2
        d_min, d_max = exact_distance_bounds(elements, METRIC)
        result = SFDM2(
            METRIC, constraint, epsilon=epsilon, distance_bounds=(d_min, d_max)
        ).run(DataStream(elements))
        k = constraint.total_size
        m = constraint.num_groups
        num_guesses = result.stats.extra["num_guesses"]
        assert result.stats.peak_stored_elements <= (m + 1) * k * num_guesses
