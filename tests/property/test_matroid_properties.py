"""Property-based tests: matroid axioms and matroid-intersection optimality."""

from typing import Dict, List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matroids.intersection import (
    intersection_upper_bound,
    is_common_independent,
    matroid_intersection,
)
from repro.matroids.partition import PartitionMatroid
from repro.matroids.uniform import UniformMatroid


@st.composite
def partition_matroids(draw, max_items: int = 12, max_blocks: int = 4):
    """A random partition matroid over the ground set {0, ..., n-1}."""
    n = draw(st.integers(min_value=1, max_value=max_items))
    num_blocks = draw(st.integers(min_value=1, max_value=max_blocks))
    assignment = draw(
        st.lists(st.integers(0, num_blocks - 1), min_size=n, max_size=n)
    )
    capacities = {
        block: draw(st.integers(min_value=0, max_value=3)) for block in range(num_blocks)
    }
    mapping: Dict[int, int] = dict(enumerate(assignment))
    return PartitionMatroid(range(n), block_of=mapping.__getitem__, capacities=capacities)


@st.composite
def matroid_pairs(draw, max_items: int = 10):
    """Two random matroids over the same ground set {0, ..., n-1}."""
    n = draw(st.integers(min_value=1, max_value=max_items))

    def build():
        kind = draw(st.sampled_from(["uniform", "partition"]))
        if kind == "uniform":
            return UniformMatroid(range(n), k=draw(st.integers(0, n)))
        num_blocks = draw(st.integers(min_value=1, max_value=3))
        assignment = draw(st.lists(st.integers(0, num_blocks - 1), min_size=n, max_size=n))
        capacities = {
            block: draw(st.integers(min_value=0, max_value=3)) for block in range(num_blocks)
        }
        mapping = dict(enumerate(assignment))
        return PartitionMatroid(range(n), block_of=mapping.__getitem__, capacities=capacities)

    return build(), build()


class TestMatroidAxioms:
    @given(matroid=partition_matroids())
    @settings(max_examples=40, deadline=None)
    def test_empty_set_independent(self, matroid):
        assert matroid.is_independent(set())

    @given(matroid=partition_matroids(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_hereditary_property(self, matroid, data):
        ground = sorted(matroid.ground_set)
        subset = set(data.draw(st.lists(st.sampled_from(ground), unique=True)) if ground else [])
        if matroid.is_independent(subset) and subset:
            smaller = set(list(subset)[:-1])
            assert matroid.is_independent(smaller)

    @given(matroid=partition_matroids(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_augmentation_property(self, matroid, data):
        """If |A| > |B| and both independent, some x in A\\B keeps B independent."""
        ground = sorted(matroid.ground_set)
        if not ground:
            return
        a = matroid.max_independent_subset(
            data.draw(st.lists(st.sampled_from(ground), unique=True))
        )
        b = matroid.max_independent_subset(
            data.draw(st.lists(st.sampled_from(ground), unique=True))
        )
        if len(a) <= len(b):
            a, b = b, a
        if len(a) == len(b):
            return
        candidates = [x for x in a - b if matroid.is_independent(b | {x})]
        assert candidates, "augmentation property violated"

    @given(matroid=partition_matroids())
    @settings(max_examples=30, deadline=None)
    def test_all_bases_have_full_rank(self, matroid):
        basis = matroid.extend_to_basis(set())
        assert len(basis) == matroid.full_rank()


def _exhaustive_max_common_independent(m1, m2) -> int:
    """Exponential oracle for the maximum common independent set size."""
    import itertools

    ground = sorted(m1.ground_set)
    best = 0
    for size in range(len(ground), -1, -1):
        if size <= best:
            break
        for subset in itertools.combinations(ground, size):
            if m1.is_independent(subset) and m2.is_independent(subset):
                best = max(best, size)
                break
    return best


class TestMatroidIntersectionProperties:
    @given(pair=matroid_pairs())
    @settings(max_examples=30, deadline=None)
    def test_result_is_common_independent(self, pair):
        m1, m2 = pair
        result = matroid_intersection(m1, m2)
        assert is_common_independent(m1, m2, result)

    @given(pair=matroid_pairs(max_items=7))
    @settings(max_examples=20, deadline=None)
    def test_result_is_maximum(self, pair):
        m1, m2 = pair
        result = matroid_intersection(m1, m2)
        assert len(result) == _exhaustive_max_common_independent(m1, m2)

    @given(pair=matroid_pairs())
    @settings(max_examples=30, deadline=None)
    def test_result_within_upper_bound(self, pair):
        m1, m2 = pair
        result = matroid_intersection(m1, m2)
        assert len(result) <= intersection_upper_bound(m1, m2)
