"""Tracing must never perturb results: traced == untraced, every algorithm.

Instrumentation only observes.  For **every** registered algorithm this
suite runs the same ``repro.solve`` call twice — once untraced, once into
a :class:`~repro.obs.MemorySink` — and asserts byte-identical solutions
(same uids in the same order, bit-equal diversity) and equal distance
accounting.  Driven off :func:`repro.algorithm_names`, so a newly
registered algorithm is covered automatically.

A second check re-computes two golden-pinned cases with tracing enabled
and compares them against the tracked ``tests/golden/solutions.json`` —
the pins hold with tracing on or off.
"""

import json
from pathlib import Path

import pytest

import repro
from repro import obs
from repro.datasets.synthetic import synthetic_blobs
from repro.obs import MemorySink

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "golden" / "solutions.json"

K = 6
EPSILON = 0.1
SEED = 7
#: Options forwarded to solve() per algorithm (match test_solve_equivalence).
SOLVE_OPTIONS = {
    "ParallelFDM": {"shards": 3, "backend": "serial"},
    "Coreset": {"num_parts": 3},
    "SlidingWindowFDM": {"window": 100, "blocks": 5},
}


@pytest.fixture(autouse=True)
def _pristine_tracer():
    """Tracing state never leaks between tests."""
    obs.configure(sink=None, enabled=False)
    yield
    obs.configure(sink=None, enabled=False)


@pytest.fixture(scope="module")
def dataset():
    return synthetic_blobs(n=250, m=2, seed=3)


def _solve(dataset, name, trace=None):
    return repro.solve(
        dataset,
        k=K,
        algorithm=name,
        epsilon=EPSILON,
        seed=SEED,
        trace=trace,
        **SOLVE_OPTIONS.get(name, {}),
    )


@pytest.mark.parametrize("name", sorted(repro.algorithm_names()))
def test_traced_run_is_byte_identical(name, dataset):
    untraced = _solve(dataset, name)
    sink = MemorySink()
    traced = _solve(dataset, name, trace=sink)

    assert not obs.enabled(), "solve(trace=...) must restore the tracer state"
    assert [e.uid for e in traced.solution.elements] == [
        e.uid for e in untraced.solution.elements
    ]
    assert traced.solution.diversity == untraced.solution.diversity
    assert (
        traced.stats.total_distance_computations
        == untraced.stats.total_distance_computations
    )
    assert (
        traced.stats.stream_distance_computations
        == untraced.stats.stream_distance_computations
    )
    assert traced.stats.elements_processed == untraced.stats.elements_processed

    # The trace is non-trivial: a solve root span wrapping the run.
    solve_spans = sink.spans("solve")
    assert len(solve_spans) == 1
    assert solve_spans[0]["attrs"]["algorithm"] == repro.get_algorithm(name).name


@pytest.mark.parametrize("case", ["blobs-m2/SFDM1", "blobs-m2/SFDM2"])
def test_golden_pins_hold_with_tracing_on(case):
    """The tracked golden records are reproduced by a *traced* solve."""
    golden = json.loads(GOLDEN_PATH.read_text())
    recorded = golden["entries"][case]
    _, name = case.split("/")
    dataset = synthetic_blobs(n=140, m=2, seed=101)
    with obs.tracing("memory"):
        result = repro.solve(
            dataset, k=golden["k"], algorithm=name,
            epsilon=golden["epsilon"], seed=golden["seed"],
        )
    assert [int(uid) for uid in result.solution.uids] == recorded["uids"]
    assert float(result.solution.diversity) == recorded["diversity"]
    assert (
        int(result.stats.total_distance_computations)
        == recorded["distance_computations"]
    )
