"""Property-based tests for the fairness-constraint factories."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fairness.constraints import equal_representation, proportional_representation


class TestEqualRepresentationProperties:
    @given(
        m=st.integers(min_value=1, max_value=12),
        extra=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=80, deadline=None)
    def test_quotas_sum_to_k_and_are_balanced(self, m, extra):
        k = m + extra
        constraint = equal_representation(k, list(range(m)))
        quotas = list(constraint.quotas.values())
        assert sum(quotas) == k
        assert max(quotas) - min(quotas) <= 1
        assert all(q >= 1 for q in quotas)


class TestProportionalRepresentationProperties:
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=10),
        extra=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=80, deadline=None)
    def test_quotas_sum_to_k_with_minimums(self, sizes, extra):
        group_sizes = dict(enumerate(sizes))
        k = len(sizes) + extra
        constraint = proportional_representation(k, group_sizes)
        quotas = constraint.quotas
        assert sum(quotas.values()) == k
        assert all(q >= 1 for q in quotas.values())

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=10_000), min_size=2, max_size=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_larger_groups_never_get_fewer_slots(self, sizes):
        group_sizes = dict(enumerate(sizes))
        k = 3 * len(sizes)
        constraint = proportional_representation(k, group_sizes)
        for a in group_sizes:
            for b in group_sizes:
                if group_sizes[a] > group_sizes[b]:
                    assert constraint.quota(a) >= constraint.quota(b) - 1
