"""Seeded randomized oracle tests for the spatial-index primitives.

Every :class:`repro.index.SpatialIndex` query must agree with a
brute-force NumPy oracle computed from the raw distance kernels — not
approximately: ``nearest`` returns the same minimum distance,
``range_count`` the same count, ``min_distance_above`` the same boolean
vector, and the finite entries of ``screen_distances`` are *bitwise*
equal to the full pairwise matrix (the omitted entries are provably
irrelevant to any radius screen).  The grid covers dimensions 1 through
16, both tree kinds, several Minkowski metrics, duplicate-heavy inputs,
and the single-element degenerate tree.

Alongside correctness, these tests pin the accounting contract: queries
charge a :class:`~repro.metrics.cached.CountingMetric` for exactly the
leaf distances they evaluate, never more than the brute-force count.
"""

import numpy as np
import pytest

from repro.index import LEAF_SIZE, SpatialIndex, resolve_index_kind
from repro.index.farthest import FarthestPointIndex
from repro.metrics.base import CallableMetric
from repro.metrics.cached import CachedMetric, CountingMetric
from repro.metrics.vector import (
    ChebyshevMetric,
    EuclideanMetric,
    ManhattanMetric,
    MinkowskiMetric,
)
from repro.utils.errors import InvalidParameterError

METRICS = [
    EuclideanMetric(),
    ManhattanMetric(),
    ChebyshevMetric(),
    MinkowskiMetric(3),
]
KINDS = ("kd", "ball")
DIMS = (1, 2, 5, 16)


def _cloud(seed: int, n: int, dim: int, duplicates: bool = False) -> np.ndarray:
    """A reproducible random point cloud, optionally with repeated rows."""
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(n, dim))
    if duplicates:
        # Overwrite a third of the rows with copies of earlier rows so
        # median splits hit ties and degenerate (zero-width) dimensions.
        source = rng.integers(0, n, size=n // 3)
        target = rng.integers(0, n, size=n // 3)
        matrix[target] = matrix[source]
    return matrix


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("metric", METRICS, ids=lambda m: m.name)
@pytest.mark.parametrize("dim", DIMS)
class TestQueryOracles:
    def test_nearest_matches_brute_force(self, kind, metric, dim):
        matrix = _cloud(seed=dim, n=90, dim=dim)
        tree = SpatialIndex(matrix, metric, kind=kind, leaf_size=8)
        rng = np.random.default_rng(dim + 100)
        for q in rng.normal(size=(12, dim)):
            row, distance = tree.nearest(q)
            brute = metric.distances_to(q, matrix)
            assert distance == brute.min()
            assert brute[row] == distance

    def test_range_count_matches_brute_force(self, kind, metric, dim):
        matrix = _cloud(seed=dim + 7, n=90, dim=dim)
        tree = SpatialIndex(matrix, metric, kind=kind, leaf_size=8)
        rng = np.random.default_rng(dim + 200)
        for q in rng.normal(size=(8, dim)):
            brute = metric.distances_to(q, matrix)
            for r in (0.0, float(np.median(brute)), float(brute.max())):
                assert tree.range_count(q, r) == int((brute <= r).sum())

    def test_min_distance_above_matches_brute_force(self, kind, metric, dim):
        matrix = _cloud(seed=dim + 13, n=80, dim=dim)
        tree = SpatialIndex(matrix, metric, kind=kind, leaf_size=8)
        rng = np.random.default_rng(dim + 300)
        Q = rng.normal(size=(15, dim))
        brute = metric.pairwise(Q, matrix).min(axis=1)
        for threshold in (0.0, float(np.median(brute)), float(brute.max()) * 1.5):
            np.testing.assert_array_equal(
                tree.min_distance_above(Q, threshold), brute >= threshold
            )

    def test_screen_distances_finite_entries_bitwise_equal(self, kind, metric, dim):
        matrix = _cloud(seed=dim + 19, n=70, dim=dim)
        tree = SpatialIndex(matrix, metric, kind=kind, leaf_size=8)
        rng = np.random.default_rng(dim + 400)
        Q = rng.normal(size=(10, dim))
        radii = rng.uniform(0.5, 2.0, size=len(matrix))
        node_max = tree.node_maxes(radii)
        screened = tree.screen_distances(Q, node_max)
        full = metric.pairwise(Q, tree.points)
        finite = np.isfinite(screened)
        # Computed entries are bitwise equal to the brute-force kernel
        # (same kernel, same operands — no tolerance needed).
        assert np.array_equal(screened[finite], full[finite])
        # Omitted entries are irrelevant: the true distance is at least
        # the radius of the omitted point, so no "min >= radius" screen
        # over any column subset can change its verdict.
        tree_radii = radii[tree.perm]
        omitted = ~finite
        assert np.all(full[omitted] >= np.broadcast_to(tree_radii, full.shape)[omitted])


@pytest.mark.parametrize("kind", KINDS)
class TestDegenerateInputs:
    def test_single_element_tree(self, kind):
        metric = EuclideanMetric()
        tree = SpatialIndex(np.array([[1.0, 2.0]]), metric, kind=kind)
        assert len(tree) == 1
        assert tree.num_nodes == 1
        row, distance = tree.nearest([1.0, 2.0])
        assert (row, distance) == (0, 0.0)
        assert tree.range_count([4.0, 6.0], 5.0) == 1
        assert tree.range_count([4.0, 6.0], 4.9) == 0
        np.testing.assert_array_equal(
            tree.min_distance_above(np.array([[4.0, 6.0]]), 5.0), [True]
        )

    def test_all_duplicate_rows(self, kind):
        metric = ManhattanMetric()
        matrix = np.tile([3.0, -1.0, 0.5], (40, 1))
        tree = SpatialIndex(matrix, metric, kind=kind, leaf_size=4)
        # Zero-width boxes: the split stops, the root is a leaf.
        assert tree.num_nodes == 1
        assert tree.range_count([3.0, -1.0, 0.5], 0.0) == 40
        row, distance = tree.nearest([4.0, -1.0, 0.5])
        assert distance == 1.0

    def test_duplicate_heavy_cloud_matches_oracle(self, kind):
        metric = EuclideanMetric()
        matrix = _cloud(seed=5, n=96, dim=3, duplicates=True)
        tree = SpatialIndex(matrix, metric, kind=kind, leaf_size=8)
        rng = np.random.default_rng(6)
        Q = rng.normal(size=(10, 3))
        brute = metric.pairwise(Q, matrix).min(axis=1)
        threshold = float(np.median(brute))
        np.testing.assert_array_equal(
            tree.min_distance_above(Q, threshold), brute >= threshold
        )
        for q, expected in zip(Q, brute):
            assert tree.nearest(q)[1] == expected

    def test_empty_matrix_rejected(self, kind):
        with pytest.raises(InvalidParameterError):
            SpatialIndex(np.empty((0, 3)), EuclideanMetric(), kind=kind)

    def test_one_dimensional_input_promoted(self, kind):
        tree = SpatialIndex(np.array([0.0, 1.0, 5.0]), EuclideanMetric(), kind=kind)
        assert tree.points.shape == (3, 1)
        assert tree.nearest([4.0])[1] == 1.0


@pytest.mark.parametrize("kind", KINDS)
def test_tree_order_is_a_permutation(kind):
    matrix = _cloud(seed=11, n=130, dim=4, duplicates=True)
    tree = SpatialIndex(matrix, EuclideanMetric(), kind=kind)
    assert sorted(tree.perm) == list(range(130))
    np.testing.assert_array_equal(tree.points, matrix[tree.perm])
    # Leaves tile [0, n) contiguously in ascending order.
    starts = tree._starts[tree._leaf_ids]
    stops = tree._stops[tree._leaf_ids]
    assert starts[0] == 0 and stops[-1] == 130
    np.testing.assert_array_equal(starts[1:], stops[:-1])
    assert all(stop - start <= LEAF_SIZE for start, stop in zip(starts, stops))


@pytest.mark.parametrize("kind", KINDS)
def test_node_maxes_matches_per_node_reduction(kind):
    matrix = _cloud(seed=21, n=75, dim=3)
    tree = SpatialIndex(matrix, EuclideanMetric(), kind=kind, leaf_size=8)
    rng = np.random.default_rng(22)
    values = rng.uniform(size=75)
    maxes = tree.node_maxes(values)
    tree_values = values[tree.perm]
    for node in range(tree.num_nodes):
        block = tree_values[tree._starts[node] : tree._stops[node]]
        assert maxes[node] == block.max()


class TestAccounting:
    """Queries charge exactly their leaf kernels — never the bound math."""

    def test_bound_arithmetic_is_never_charged(self):
        counting = CountingMetric(EuclideanMetric())
        matrix = _cloud(seed=31, n=64, dim=3)
        for kind in KINDS:
            tree = SpatialIndex(matrix, counting, kind=kind, leaf_size=8)
            counting.reset()
            Q = np.random.default_rng(32).normal(size=(5, 3))
            tree.lower_bounds(Q, 0)
            tree.upper_bounds(Q, 0)
            tree.node_maxes(np.ones(64))
            assert counting.calls == 0

    @pytest.mark.parametrize("kind", KINDS)
    def test_queries_never_exceed_brute_force(self, kind):
        counting = CountingMetric(EuclideanMetric())
        matrix = _cloud(seed=41, n=200, dim=2)
        tree = SpatialIndex(matrix, counting, kind=kind, leaf_size=8)
        rng = np.random.default_rng(42)
        Q = rng.normal(size=(20, 2))

        counting.reset()
        for q in Q:
            tree.nearest(q, metric=counting)
        assert counting.calls <= Q.shape[0] * len(matrix)

        counting.reset()
        tree.min_distance_above(Q, 0.05, metric=counting)
        indexed = counting.calls
        assert indexed <= Q.shape[0] * len(matrix)
        # At a tiny threshold almost everything prunes: the saving must
        # be real, not merely non-negative.
        assert indexed < Q.shape[0] * len(matrix) // 2

    @pytest.mark.parametrize("kind", KINDS)
    def test_screen_distances_charges_exactly_the_finite_entries(self, kind):
        counting = CountingMetric(EuclideanMetric())
        matrix = _cloud(seed=51, n=150, dim=2)
        tree = SpatialIndex(matrix, counting, kind=kind, leaf_size=8)
        rng = np.random.default_rng(52)
        Q = rng.normal(size=(8, 2))
        radii = rng.uniform(0.1, 0.6, size=len(matrix))
        node_max = tree.node_maxes(radii)
        counting.reset()
        screened = tree.screen_distances(Q, node_max, metric=counting)
        # Pruning is per (query, leaf): every evaluated leaf block is
        # charged wholesale, so the charge is at least the finite entries
        # and at most the full matrix.
        assert int(np.isfinite(screened).sum()) <= counting.calls
        assert counting.calls < Q.shape[0] * len(matrix)


class TestFarthestPointIndex:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("metric", METRICS, ids=lambda m: m.name)
    def test_update_rounds_bitwise_equal_brute(self, kind, metric):
        matrix = _cloud(seed=61, n=180, dim=3)
        counting = CountingMetric(metric)
        index = FarthestPointIndex(matrix, counting, kind=kind)
        nearest = np.full(len(matrix), np.inf)
        brute = np.full(len(matrix), np.inf)
        rng = np.random.default_rng(62)
        order = rng.permutation(len(matrix))[:15]
        counting.reset()
        for step, row in enumerate(order):
            vector = matrix[row]
            if step == 0:
                index.seed(vector, nearest, counting)
            else:
                index.update(vector, nearest, counting)
            brute = np.minimum(brute, metric.distances_to(vector, matrix))
            np.testing.assert_array_equal(nearest, brute)
        assert counting.calls <= len(order) * len(matrix)

    def test_masked_entries_stay_masked(self):
        # GMM marks selected rows with -1; pruned subtrees must not
        # resurrect them and min-folds must keep them at -1.
        matrix = _cloud(seed=71, n=60, dim=2)
        metric = EuclideanMetric()
        index = FarthestPointIndex(matrix, metric, kind="kd")
        nearest = np.full(60, np.inf)
        index.seed(matrix[0], nearest, metric)
        nearest[[3, 7, 11]] = -1.0
        index.update(matrix[20], nearest, metric)
        assert (nearest[[3, 7, 11]] == -1.0).all()


class TestKindResolution:
    def test_none_and_missing_resolve_to_brute(self):
        metric = EuclideanMetric()
        assert resolve_index_kind(None, metric) is None
        assert resolve_index_kind("none", metric) is None

    def test_explicit_kinds_pass_through(self):
        metric = EuclideanMetric()
        assert resolve_index_kind("kd", metric) == "kd"
        assert resolve_index_kind("ball", metric) == "ball"

    def test_auto_degrades_silently_without_bounds(self):
        scalar = CallableMetric(lambda x, y: 0.0)
        assert resolve_index_kind("auto", scalar) is None
        assert resolve_index_kind("auto", EuclideanMetric()) == "kd"

    def test_explicit_kind_on_unsupported_metric_raises(self):
        scalar = CallableMetric(lambda x, y: 0.0)
        with pytest.raises(InvalidParameterError):
            resolve_index_kind("kd", scalar)

    def test_unknown_kind_raises(self):
        with pytest.raises(InvalidParameterError):
            resolve_index_kind("quadtree", EuclideanMetric())

    def test_wrappers_are_unwrapped(self):
        wrapped = CountingMetric(CachedMetric(EuclideanMetric()))
        assert resolve_index_kind("auto", wrapped) == "kd"
