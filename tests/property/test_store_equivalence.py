"""Store-backed and object-backed execution must be indistinguishable.

The columnar ``ElementStore`` is a data-layout change, not an algorithm
change: for every streaming algorithm, feeding the same logical stream
through a store-backed :class:`DataStream` (row-range ingestion, memoised
union screens) and through a plain element list (the retained object
compatibility path) must produce byte-identical solutions *and* charge the
same number of distance computations, across seeds, metrics, and batch
sizes.  These tests pin that contract — it is what makes the store safe to
use as the canonical in-memory representation.
"""

import numpy as np
import pytest

from repro.core.sfdm1 import SFDM1
from repro.core.sfdm2 import SFDM2
from repro.core.streaming_dm import StreamingDiversityMaximization
from repro.datasets.synthetic import synthetic_blobs
from repro.fairness.constraints import equal_representation
from repro.metrics.vector import EuclideanMetric, ManhattanMetric
from repro.parallel import ParallelFDM
from repro.streaming.stream import DataStream

METRICS = {"euclidean": EuclideanMetric(), "manhattan": ManhattanMetric()}

N = 400
K = 8
M = 2


def _dataset(seed, m=M):
    return synthetic_blobs(n=N, m=m, seed=seed)


def _streams(dataset, seed):
    """The same logical stream, store-backed and object-backed."""
    store_stream = dataset.stream(seed=seed)
    assert store_stream.store is not None, "synthetic data must be columnar"
    object_stream = DataStream(dataset.elements, shuffle_seed=seed, name=dataset.name)
    return store_stream, object_stream


def _assert_equivalent(store_result, object_result):
    assert sorted(store_result.solution.uids) == sorted(object_result.solution.uids)
    assert store_result.solution.diversity == pytest.approx(
        object_result.solution.diversity, abs=0.0
    )
    assert (
        store_result.stats.stream_distance_computations
        == object_result.stats.stream_distance_computations
    )
    assert (
        store_result.stats.postprocess_distance_computations
        == object_result.stats.postprocess_distance_computations
    )
    assert (
        store_result.stats.elements_processed == object_result.stats.elements_processed
    )


@pytest.mark.parametrize("metric_name", sorted(METRICS))
@pytest.mark.parametrize("batch_size", [None, 7, 64])
@pytest.mark.parametrize("seed", [0, 3])
class TestStreamingEquivalence:
    def test_streaming_dm(self, metric_name, batch_size, seed):
        dataset = _dataset(seed)
        store_stream, object_stream = _streams(dataset, seed + 1)
        metric = METRICS[metric_name]

        def _run(stream):
            return StreamingDiversityMaximization(
                metric=metric, k=K, epsilon=0.2, batch_size=batch_size
            ).run(stream)

        _assert_equivalent(_run(store_stream), _run(object_stream))

    def test_sfdm1(self, metric_name, batch_size, seed):
        dataset = _dataset(seed)
        constraint = equal_representation(K, list(dataset.group_sizes().keys()))
        store_stream, object_stream = _streams(dataset, seed + 1)
        metric = METRICS[metric_name]

        def _run(stream):
            return SFDM1(
                metric=metric,
                constraint=constraint,
                epsilon=0.2,
                batch_size=batch_size,
            ).run(stream)

        _assert_equivalent(_run(store_stream), _run(object_stream))

    def test_sfdm2(self, metric_name, batch_size, seed):
        dataset = _dataset(seed, m=3)
        constraint = equal_representation(9, list(dataset.group_sizes().keys()))
        store_stream, object_stream = _streams(dataset, seed + 1)
        metric = METRICS[metric_name]

        def _run(stream):
            return SFDM2(
                metric=metric,
                constraint=constraint,
                epsilon=0.2,
                batch_size=batch_size,
            ).run(stream)

        _assert_equivalent(_run(store_stream), _run(object_stream))


@pytest.mark.parametrize("seed", [1, 4])
@pytest.mark.parametrize("backend", ["serial", "thread"])
def test_parallel_fdm_equivalence(seed, backend):
    """ParallelFDM: store shards and element shards give the same solution."""
    dataset = _dataset(seed, m=3)
    constraint = equal_representation(9, list(dataset.group_sizes().keys()))
    store_stream, object_stream = _streams(dataset, seed + 1)

    def _run(stream):
        return ParallelFDM(
            metric=dataset.metric,
            constraint=constraint,
            shards=3,
            backend=backend,
            seed=17,
        ).run(stream)

    store_result = _run(store_stream)
    object_result = _run(object_stream)
    assert sorted(store_result.solution.uids) == sorted(object_result.solution.uids)
    assert (
        store_result.stats.stream_distance_computations
        == object_result.stats.stream_distance_computations
    )
    assert (
        store_result.stats.postprocess_distance_computations
        == object_result.stats.postprocess_distance_computations
    )


def test_explicit_bounds_skip_warmup_identically():
    """With known distance bounds both paths skip the warmup buffering."""
    dataset = _dataset(2)
    constraint = equal_representation(K, list(dataset.group_sizes().keys()))
    store_stream, object_stream = _streams(dataset, 5)

    def _run(stream):
        return SFDM2(
            metric=dataset.metric,
            constraint=constraint,
            epsilon=0.2,
            distance_bounds=(0.05, 60.0),
            batch_size=32,
        ).run(stream)

    _assert_equivalent(_run(store_stream), _run(object_stream))


def test_canonical_order_equivalence():
    """No shuffle seed: the store path ingests zero-copy row ranges."""
    dataset = _dataset(6)
    constraint = equal_representation(K, list(dataset.group_sizes().keys()))
    store_stream = dataset.stream(seed=None)
    object_stream = DataStream(dataset.elements, shuffle_seed=None)

    def _run(stream):
        return SFDM2(
            metric=dataset.metric, constraint=constraint, epsilon=0.2, batch_size=16
        ).run(stream)

    _assert_equivalent(_run(store_stream), _run(object_stream))
