"""Differential harness: indexed runs are identical, on fewer evaluations.

The spatial-index layer (:mod:`repro.index`) claims exactly two things,
and this module is the gate for both:

1. **Identical solutions.**  For every index-capable algorithm in the
   registry, ``repro.solve(..., index="kd"/"ball")`` returns byte-identical
   solution uids and the exact same diversity as the brute-force run with
   otherwise identical configuration (same seed, same batch size).
2. **Never more distance evaluations.**  The indexed run's
   :class:`~repro.metrics.cached.CountingMetric` total is less than or
   equal to the brute-force run's — and *strictly* less for the
   designated screen-heavy configurations (SFDM1/SFDM2, where the
   indexed screen replaces the charged union-dedup kernel).

Algorithms that do not declare the ``index`` option must reject it
loudly, ``index="auto"`` must degrade silently on metrics without box
bounds while an explicit kind raises, and ``index="none"`` must be
indistinguishable from not passing the option at all.

The case list is registry-driven: registering a new index-capable
algorithm automatically adds it to the differential grid.
"""

import numpy as np
import pytest

import repro
from repro.datasets.synthetic import synthetic_blobs
from repro.metrics.base import CallableMetric
from repro.utils.errors import InvalidParameterError

K = 6
SEED = 7
EPSILON = 0.1

DATASETS = {
    "blobs-m2": lambda: synthetic_blobs(n=140, m=2, seed=101),
    "blobs-m3": lambda: synthetic_blobs(n=150, m=3, seed=202),
}

#: Non-index options per algorithm, applied identically to the brute and
#: indexed runs.  The streaming algorithms get an explicit ``batch_size``:
#: counts are only comparable at the same chunking (with ``index=`` and no
#: batch size they would chunk at DEFAULT_INDEX_BATCH while the brute run
#: stays scalar — still identical solutions, but incomparable accounting).
OPTIONS = {
    "SFDM1": {"batch_size": 64},
    "SFDM2": {"batch_size": 64},
    "StreamingDM": {"batch_size": 64},
    "Coreset": {"num_parts": 3},
    "SlidingWindowFDM": {"window": 80, "blocks": 4},
    "WindowFDM": {"blocks": 4},
}

#: Configurations whose indexed run must save evaluations *strictly*: the
#: indexed screen never charges the union-dedup memoisation the brute
#: kernel charges, so any screened chunk at all yields a saving.
STRICT_REDUCTION = {"SFDM1", "SFDM2"}


def _index_capable():
    return [
        name
        for name in repro.algorithm_names()
        if "index" in repro.get_algorithm(name).capabilities.options
    ]


def _cases():
    cases = []
    for dataset_key, factory in DATASETS.items():
        num_groups = factory().num_groups
        for name in _index_capable():
            if not repro.get_algorithm(name).capabilities.supports_groups(num_groups):
                continue
            for kind in ("kd", "ball"):
                cases.append((dataset_key, name, kind))
    return cases


def _run(dataset_key, name, **extra):
    result = repro.solve(
        DATASETS[dataset_key](),
        k=K,
        algorithm=name,
        epsilon=EPSILON,
        seed=SEED,
        **OPTIONS.get(name, {}),
        **extra,
    )
    assert result.solution is not None, f"{name} found no solution on {dataset_key}"
    return result


_BRUTE_CACHE = {}


def _brute(dataset_key, name):
    key = (dataset_key, name)
    if key not in _BRUTE_CACHE:
        _BRUTE_CACHE[key] = _run(dataset_key, name)
    return _BRUTE_CACHE[key]


def test_registry_declares_expected_index_capable_set():
    """The differential grid covers the algorithms the index layer wires."""
    assert set(_index_capable()) == {
        "StreamingDM",
        "SFDM1",
        "SFDM2",
        "GMM",
        "Coreset",
        "WindowFDM",
        "SlidingWindowFDM",
    }


@pytest.mark.parametrize(
    "dataset_key,name,kind", _cases(), ids=[f"{d}/{n}/{k}" for d, n, k in _cases()]
)
def test_indexed_solution_identical_on_fewer_evaluations(dataset_key, name, kind):
    brute = _brute(dataset_key, name)
    indexed = _run(dataset_key, name, index=kind)

    # Byte-identical solution: same uids in the same order, exact same
    # diversity float (identical kernels on identical operands — no
    # tolerance).
    assert list(indexed.solution.uids) == list(brute.solution.uids)
    assert indexed.solution.diversity == brute.solution.diversity
    assert indexed.stats.elements_processed == brute.stats.elements_processed

    # Never more counted distance evaluations.
    assert (
        indexed.stats.total_distance_computations
        <= brute.stats.total_distance_computations
    ), f"indexed {name} charged MORE evaluations than brute force"
    if name in STRICT_REDUCTION:
        assert (
            indexed.stats.total_distance_computations
            < brute.stats.total_distance_computations
        ), f"indexed {name} saved nothing over brute force"


@pytest.mark.parametrize("name", ["SFDM1", "SFDM2"])
def test_streaming_stats_record_the_index_kind(name):
    brute = _brute("blobs-m2", name)
    indexed = _run("blobs-m2", name, index="kd")
    assert indexed.stats.index_kind == "kd"
    assert brute.stats.index_kind is None
    assert "index_kind" not in brute.stats.as_dict()
    assert indexed.stats.as_dict()["index_kind"] == "kd"


def test_index_none_is_byte_identical_to_omitting_the_option():
    brute = _brute("blobs-m2", "SFDM2")
    explicit = _run("blobs-m2", "SFDM2", index="none")
    assert list(explicit.solution.uids) == list(brute.solution.uids)
    assert explicit.solution.diversity == brute.solution.diversity
    assert (
        explicit.stats.total_distance_computations
        == brute.stats.total_distance_computations
    )


@pytest.mark.parametrize(
    "name",
    [
        name
        for name in repro.algorithm_names()
        if "index" not in repro.get_algorithm(name).capabilities.options
    ],
)
def test_non_capable_algorithms_reject_the_option(name):
    with pytest.raises(InvalidParameterError):
        repro.solve(
            DATASETS["blobs-m2"](), k=K, algorithm=name, seed=SEED, index="kd"
        )


def test_unknown_index_kind_rejected_before_running():
    with pytest.raises(InvalidParameterError):
        repro.solve(
            DATASETS["blobs-m2"](), k=K, algorithm="SFDM2", seed=SEED, index="quadtree"
        )


class TestMetricCompatibility:
    """auto degrades silently; an explicit kind on a boundless metric raises."""

    @staticmethod
    def _scalar_metric():
        # A plain scalar-callable Euclidean: no batch kernels, no box
        # bounds, so no index can be built over it.
        return CallableMetric(
            lambda x, y: float(np.linalg.norm(np.asarray(x) - np.asarray(y))),
            name="scalar-euclidean",
        )

    def test_auto_degrades_silently(self):
        dataset = synthetic_blobs(n=40, m=2, seed=303)
        brute = repro.solve(
            dataset, k=4, algorithm="GMM", seed=SEED, metric=self._scalar_metric()
        )
        auto = repro.solve(
            dataset,
            k=4,
            algorithm="GMM",
            seed=SEED,
            metric=self._scalar_metric(),
            index="auto",
        )
        assert list(auto.solution.uids) == list(brute.solution.uids)
        assert (
            auto.stats.total_distance_computations
            == brute.stats.total_distance_computations
        )

    def test_explicit_kind_raises(self):
        dataset = synthetic_blobs(n=40, m=2, seed=303)
        with pytest.raises(InvalidParameterError):
            repro.solve(
                dataset,
                k=4,
                algorithm="GMM",
                seed=SEED,
                metric=self._scalar_metric(),
                index="kd",
            )


def test_auto_picks_kd_on_an_indexable_metric():
    brute = _brute("blobs-m2", "SFDM2")
    auto = _run("blobs-m2", "SFDM2", index="auto")
    kd = _run("blobs-m2", "SFDM2", index="kd")
    assert list(auto.solution.uids) == list(brute.solution.uids)
    assert (
        auto.stats.total_distance_computations
        == kd.stats.total_distance_computations
    )
    assert auto.stats.index_kind == "kd"
