"""Property: LRU eviction + restore is invisible to the served answers.

A session that the :class:`repro.serving.SessionManager` evicts to a
pickle checkpoint mid-stream (and transparently restores on the next
touch) must produce **byte-identical** results — same solution uids,
bit-equal diversity, equal distance-computation counts — to a session
that stayed resident the whole time, and to a plain
:func:`repro.open_session` session fed the same rows directly.

The test drives the same row stream through three pipelines:

* ``max_live=1`` manager with a decoy session touched after every chunk,
  so the target session is evicted and restored at every cut point;
* ``max_live=64`` manager (never evicts);
* a raw session (no manager, one big ``offer_rows`` call).

and checks the mid-stream *and* final fingerprints agree, for both a
streaming algorithm (SFDM2) and a windowed one (SlidingWindowFDM).
This reuses the fingerprint discipline of the PR 4 checkpoint-
equivalence harness.
"""

import asyncio

import numpy as np
import pytest

from repro.api.solve import open_session
from repro.datasets.synthetic import synthetic_blobs
from repro.serving import ManagerConfig, SessionManager

K = 4
#: Chunk boundaries; each one is an eviction/restore point for the target.
CUTS = (40, 97, 201, 240)

ALGORITHMS = (
    ("SFDM2", {}),  # StreamingSession; manager injects batch_size=max_batch
    ("SlidingWindowFDM", {"window": 120}),  # WindowSession
)


@pytest.fixture(scope="module")
def rows():
    dataset = synthetic_blobs(n=240, m=2, seed=17)
    features = np.asarray([element.vector for element in dataset.elements], dtype=float)
    groups = np.asarray([int(element.group) for element in dataset.elements])
    return features, groups


def _fingerprint(result):
    solution = result.solution
    return (
        list(solution.uids) if solution is not None else None,
        result.diversity,
        result.stats.total_distance_computations,
        result.stats.stream_distance_computations,
        result.stats.elements_processed,
    )


async def _drive_managed(tmp_path, tag, algorithm, options, rows, evict):
    """Feed the chunked stream through a manager; fingerprints at every cut.

    With ``evict=True`` the manager has one live slot and a decoy session
    is touched after every chunk, so the target is checkpointed out (and
    restored by the next offer) at every cut point.
    """
    features, groups = rows
    config = ManagerConfig(
        state_dir=tmp_path / f"{tag}-{algorithm}-{evict}",
        max_live=1 if evict else 64,
        max_batch=48,
        flush_ms=60_000.0,  # deadlines never fire: flushes are deterministic
    )
    manager = SessionManager(config)
    await manager.create(
        k=K, groups=2, algorithm=algorithm, options=dict(options), name="target"
    )
    await manager.create(
        k=K, groups=2, algorithm=algorithm, options=dict(options), name="decoy"
    )
    await manager.offer("decoy", features[:8], groups=groups[:8])
    await manager.flush("decoy")

    fingerprints = []
    start = 0
    for cut in CUTS:
        await manager.offer(
            "target", features[start:cut], groups=groups[start:cut]
        )
        await manager.flush("target")
        fingerprints.append(_fingerprint(await manager.solution("target")))
        if evict:
            # touch the decoy so the single live slot kicks the target out
            await manager.solution("decoy")
            assert not manager.is_live("target"), f"cut={cut}"
        start = cut
    return fingerprints


def _drive_raw(algorithm, options, rows):
    """The reference: one unmanaged session, all rows in one call."""
    features, groups = rows
    opts = dict(options)
    if algorithm == "SFDM2":
        opts["batch_size"] = 48  # match the manager's injected batch size
    session = open_session(k=K, groups=[0, 1], algorithm=algorithm, options=opts)
    fingerprints = []
    start = 0
    for cut in CUTS:
        session.offer_rows(features[start:cut], groups=groups[start:cut])
        fingerprints.append(_fingerprint(session.solution()))
        start = cut
    return fingerprints


@pytest.mark.parametrize("algorithm, options", ALGORITHMS)
def test_evicted_session_is_byte_identical(tmp_path, rows, algorithm, options):
    async def scenario():
        churned = await _drive_managed(
            tmp_path, "churn", algorithm, options, rows, evict=True
        )
        resident = await _drive_managed(
            tmp_path, "rest", algorithm, options, rows, evict=False
        )
        return churned, resident

    churned, resident = asyncio.run(scenario())
    reference = _drive_raw(algorithm, options, rows)
    assert churned == resident, f"{algorithm}: eviction changed the answers"
    assert churned == reference, f"{algorithm}: manager changed the answers"


@pytest.mark.parametrize("algorithm, options", ALGORITHMS)
def test_eviction_counts_are_nonzero(tmp_path, rows, algorithm, options):
    """The churn pipeline really does evict (guards the test itself)."""

    async def scenario():
        config = ManagerConfig(
            state_dir=tmp_path / "guard",
            max_live=1,
            max_batch=48,
            flush_ms=60_000.0,
        )
        manager = SessionManager(config)
        await manager.create(
            k=K, groups=2, algorithm=algorithm, options=dict(options), name="a"
        )
        await manager.create(
            k=K, groups=2, algorithm=algorithm, options=dict(options), name="b"
        )
        features, groups = rows
        for start, cut in zip((0,) + CUTS, CUTS):
            await manager.offer("a", features[start:cut], groups=groups[start:cut])
            await manager.flush("a")  # restores a, evicts b
            await manager.offer("b", features[start:cut], groups=groups[start:cut])
            await manager.flush("b")  # restores b, evicts a
        assert manager.stats()["evicted"] == 1
        a = _fingerprint(await manager.solution("a"))
        b = _fingerprint(await manager.solution("b"))
        assert a == b  # identical inputs through identical churn agree

    asyncio.run(scenario())
