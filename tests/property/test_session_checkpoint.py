"""Property: ``checkpoint -> resume -> continue`` == an uninterrupted run.

For every session-capable streaming algorithm (SFDM1, SFDM2, StreamingDM),
several stream seeds, and several cut points — including one in the middle
of the warmup buffer and, for the batch mode, one in the middle of a chunk —
interrupting a session with a checkpoint and resuming it from disk must
yield the byte-identical final solution (same uids, bit-equal diversity)
and equal distance counts as a session that was never interrupted, which in
turn matches the one-shot ``run()`` over the same element order.
"""

import pytest

import repro
from repro.core.sfdm1 import SFDM1
from repro.core.sfdm2 import SFDM2
from repro.core.streaming_dm import StreamingDiversityMaximization
from repro.datasets.synthetic import synthetic_blobs

K = 6
SEEDS = (3, 11)
#: Cut points: mid-warmup, just past warmup, and deep into the stream.
CUTS = (40, 70, 201)


def _algorithm(name, dataset, constraint, batch_size=None):
    if name == "SFDM1":
        return SFDM1(
            metric=dataset.metric, constraint=constraint, batch_size=batch_size
        )
    if name == "SFDM2":
        return SFDM2(
            metric=dataset.metric, constraint=constraint, batch_size=batch_size
        )
    return StreamingDiversityMaximization(
        metric=dataset.metric, k=K, batch_size=batch_size
    )


def _fingerprint(result):
    return (
        [element.uid for element in result.solution.elements],
        result.solution.diversity,
        result.stats.total_distance_computations,
        result.stats.stream_distance_computations,
        result.stats.elements_processed,
    )


@pytest.fixture(scope="module")
def dataset():
    return synthetic_blobs(n=320, m=2, seed=17)


@pytest.fixture(scope="module")
def constraint(dataset):
    return repro.equal_representation(K, list(dataset.group_sizes().keys()))


@pytest.mark.parametrize("name", ("SFDM1", "SFDM2", "StreamingDM"))
@pytest.mark.parametrize("seed", SEEDS)
def test_checkpoint_resume_continue_is_byte_identical(
    name, seed, dataset, constraint, tmp_path
):
    elements = list(dataset.stream(seed=seed))

    uninterrupted = repro.StreamingSession(_algorithm(name, dataset, constraint))
    uninterrupted.offer_batch(elements)
    reference = _fingerprint(uninterrupted.solution())

    # the one-shot run over the same order agrees with the session
    one_shot = _algorithm(name, dataset, constraint).run(dataset.stream(seed=seed))
    assert _fingerprint(one_shot) == reference

    for cut in CUTS:
        session = repro.StreamingSession(_algorithm(name, dataset, constraint))
        session.offer_batch(elements[:cut])
        path = session.checkpoint(tmp_path / f"{name}-{seed}-{cut}.ckpt")
        restored = repro.resume(path)
        restored.offer_batch(elements[cut:])
        assert _fingerprint(restored.solution()) == reference, (
            f"resume at cut={cut} diverged from the uninterrupted run"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_checkpoint_resume_in_batch_mode(seed, dataset, constraint, tmp_path):
    """Batch ingestion: cuts that split chunks still continue identically."""
    batch_size = 48
    elements = list(dataset.stream(seed=seed))

    uninterrupted = repro.StreamingSession(
        _algorithm("SFDM2", dataset, constraint, batch_size=batch_size)
    )
    uninterrupted.offer_batch(elements)
    reference = _fingerprint(uninterrupted.solution())

    one_shot = _algorithm("SFDM2", dataset, constraint, batch_size=batch_size).run(
        dataset.stream(seed=seed)
    )
    assert _fingerprint(one_shot) == reference

    for cut in (70, 119):  # past warmup; 119 splits a 48-element chunk
        session = repro.StreamingSession(
            _algorithm("SFDM2", dataset, constraint, batch_size=batch_size)
        )
        session.offer_batch(elements[:cut])
        session.solution()  # a mid-stream query must not disturb the continuation
        path = session.checkpoint(tmp_path / f"batch-{seed}-{cut}.ckpt")
        restored = repro.resume(path)
        restored.offer_batch(elements[cut:])
        assert _fingerprint(restored.solution()) == reference


@pytest.mark.parametrize("seed", SEEDS)
def test_double_checkpoint_chain(seed, dataset, constraint, tmp_path):
    """Two interruptions in one stream still land on the reference answer."""
    elements = list(dataset.stream(seed=seed))
    uninterrupted = repro.StreamingSession(_algorithm("SFDM2", dataset, constraint))
    uninterrupted.offer_batch(elements)
    reference = _fingerprint(uninterrupted.solution())

    session = repro.StreamingSession(_algorithm("SFDM2", dataset, constraint))
    session.offer_batch(elements[:50])
    session = repro.resume(session.checkpoint(tmp_path / f"first-{seed}.ckpt"))
    session.offer_batch(elements[50:180])
    session = repro.resume(session.checkpoint(tmp_path / f"second-{seed}.ckpt"))
    session.offer_batch(elements[180:])
    assert _fingerprint(session.solution()) == reference


@pytest.mark.parametrize("seed", SEEDS)
def test_window_session_checkpoint_resume(seed, dataset, constraint, tmp_path):
    """The sliding-window session also survives interruption byte-identically."""
    from repro.windowing import CheckpointedWindowFDM

    elements = list(dataset.stream(seed=seed))

    def make():
        return repro.WindowSession(
            CheckpointedWindowFDM(
                metric=dataset.metric, constraint=constraint, window=150, blocks=5
            )
        )

    uninterrupted = make()
    uninterrupted.offer_batch(elements)
    reference = uninterrupted.solution()

    session = make()
    session.offer_batch(elements[:120])
    session = repro.resume(session.checkpoint(tmp_path / f"window-{seed}.ckpt"))
    session.offer_batch(elements[120:])
    result = session.solution()

    assert [e.uid for e in result.solution.elements] == [
        e.uid for e in reference.solution.elements
    ]
    assert result.solution.diversity == reference.solution.diversity
    assert result.stats.peak_stored_elements == reference.stats.peak_stored_elements
