"""Property-based tests for the post-processing building blocks.

These target the two lemmas the paper's analysis rests on:

* Lemma 2's setting — balancing a ``µ``-separated group-blind candidate
  with a ``µ``-separated group-specific candidate yields a fair set whose
  diversity is at least ``µ / 2``;
* the greedy fair fill always returns a quota-respecting (independent) set
  and returns a *fair* set whenever the pool contains enough elements of
  every group.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.candidate import Candidate
from repro.core.postprocess import balance_by_swapping, greedy_fair_fill
from repro.core.solution import diversity_of
from repro.fairness.constraints import FairnessConstraint
from repro.metrics.vector import EuclideanMetric
from repro.data.element import Element

METRIC = EuclideanMetric()

coordinates = st.lists(
    st.tuples(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        st.floats(min_value=-100, max_value=100, allow_nan=False),
    ),
    min_size=8,
    max_size=40,
    unique=True,
)


def _elements(points, groups):
    return [
        Element(uid=i, vector=np.array([x, y]), group=groups[i])
        for i, (x, y) in enumerate(points)
    ]


class TestBalanceBySwappingProperties:
    @given(
        points=coordinates,
        mu=st.floats(min_value=0.5, max_value=30.0, allow_nan=False),
        k1=st.integers(min_value=1, max_value=4),
        k2=st.integers(min_value=1, max_value=4),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_lemma2_shape(self, points, mu, k1, k2, data):
        """Build the Lemma 2 inputs from scratch and check its conclusion."""
        groups = [data.draw(st.integers(0, 1)) for _ in range(len(points))]
        elements = _elements(points, groups)
        constraint = FairnessConstraint({0: k1, 1: k2})
        k = k1 + k2

        # Group-blind candidate of capacity k and group-specific candidates of
        # capacity k_i, exactly as SFDM1's stream phase builds them.
        blind = Candidate(mu=mu, capacity=k, metric=METRIC)
        specific = {
            0: Candidate(mu=mu, capacity=k1, metric=METRIC, group=0),
            1: Candidate(mu=mu, capacity=k2, metric=METRIC, group=1),
        }
        for element in elements:
            blind.offer(element)
            specific[element.group].offer(element)

        # The lemma's premises: all three candidates are full.
        assume(len(blind) == k)
        assume(len(specific[0]) == k1 and len(specific[1]) == k2)

        balanced = balance_by_swapping(
            blind.elements,
            {0: specific[0].elements, 1: specific[1].elements},
            constraint,
            METRIC,
        )
        assert constraint.is_fair(balanced)
        assert diversity_of(balanced, METRIC) >= mu / 2 - 1e-9


class TestGreedyFairFillProperties:
    @given(
        points=coordinates,
        quota0=st.integers(min_value=1, max_value=3),
        quota1=st.integers(min_value=1, max_value=3),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_returns_independent_set_and_fair_when_feasible(
        self, points, quota0, quota1, data
    ):
        groups = [data.draw(st.integers(0, 1)) for _ in range(len(points))]
        elements = _elements(points, groups)
        constraint = FairnessConstraint({0: quota0, 1: quota1})
        result = greedy_fair_fill(elements, constraint, METRIC)
        assert constraint.is_independent(result)
        counts = {0: groups.count(0), 1: groups.count(1)}
        feasible = counts[0] >= quota0 and counts[1] >= quota1
        if feasible:
            assert constraint.is_fair(result)
        uids = [e.uid for e in result]
        assert len(uids) == len(set(uids))
