"""Property-based tests: metric axioms for every shipped metric."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics.vector import (
    AngularMetric,
    ChebyshevMetric,
    EuclideanMetric,
    HammingMetric,
    ManhattanMetric,
    MinkowskiMetric,
)

DIM = 4

finite_floats = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)
vectors = arrays(dtype=float, shape=DIM, elements=finite_floats)
nonzero_vectors = vectors.filter(lambda v: float(np.linalg.norm(v)) > 1e-6)
binary_vectors = arrays(dtype=int, shape=DIM, elements=st.integers(0, 1))

TRIANGLE_METRICS = [
    EuclideanMetric(),
    ManhattanMetric(),
    ChebyshevMetric(),
    MinkowskiMetric(3),
    HammingMetric(),
]


@pytest.mark.parametrize("metric", TRIANGLE_METRICS, ids=lambda m: m.name)
class TestVectorMetricAxioms:
    @given(x=vectors, y=vectors)
    @settings(max_examples=40, deadline=None)
    def test_non_negative_and_symmetric(self, metric, x, y):
        if metric.name == "hamming":
            x, y = (x > 0).astype(int), (y > 0).astype(int)
        d_xy = metric.distance(x, y)
        d_yx = metric.distance(y, x)
        assert d_xy >= 0
        assert d_xy == pytest.approx(d_yx, rel=1e-9, abs=1e-9)

    @given(x=vectors)
    @settings(max_examples=25, deadline=None)
    def test_identity(self, metric, x):
        if metric.name == "hamming":
            x = (x > 0).astype(int)
        assert metric.distance(x, x) == pytest.approx(0.0, abs=1e-9)

    @given(x=vectors, y=vectors, z=vectors)
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, metric, x, y, z):
        if metric.name == "hamming":
            x, y, z = (x > 0).astype(int), (y > 0).astype(int), (z > 0).astype(int)
        d_xz = metric.distance(x, z)
        d_xy = metric.distance(x, y)
        d_yz = metric.distance(y, z)
        assert d_xz <= d_xy + d_yz + 1e-7


class TestAngularMetricAxioms:
    @given(x=nonzero_vectors, y=nonzero_vectors)
    @settings(max_examples=40, deadline=None)
    def test_symmetric_and_bounded(self, x, y):
        metric = AngularMetric()
        d = metric.distance(x, y)
        assert 0.0 <= d <= math.pi + 1e-9
        assert d == pytest.approx(metric.distance(y, x), abs=1e-9)

    @given(x=nonzero_vectors, y=nonzero_vectors, z=nonzero_vectors)
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, x, y, z):
        metric = AngularMetric()
        assert metric.distance(x, z) <= metric.distance(x, y) + metric.distance(y, z) + 1e-7

    @given(x=nonzero_vectors, scale=st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=25, deadline=None)
    def test_scale_invariance(self, x, scale):
        metric = AngularMetric()
        assert metric.distance(x, scale * x) == pytest.approx(0.0, abs=1e-6)
