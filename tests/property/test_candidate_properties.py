"""Property-based tests for the greedy candidate and the clustering helper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidate import Candidate
from repro.core.postprocess import cluster_elements
from repro.metrics.vector import EuclideanMetric
from repro.data.element import Element

METRIC = EuclideanMetric()

points = st.lists(
    st.tuples(
        st.floats(min_value=-50, max_value=50, allow_nan=False),
        st.floats(min_value=-50, max_value=50, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
)


def _elements(coordinates):
    return [
        Element(uid=i, vector=np.array([x, y]), group=i % 2)
        for i, (x, y) in enumerate(coordinates)
    ]


class TestCandidateInvariant:
    @given(
        coordinates=points,
        mu=st.floats(min_value=0.1, max_value=20.0, allow_nan=False),
        capacity=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_pairwise_distance_at_least_mu(self, coordinates, mu, capacity):
        candidate = Candidate(mu=mu, capacity=capacity, metric=METRIC)
        for element in _elements(coordinates):
            candidate.offer(element)
        assert len(candidate) <= capacity
        elements = candidate.elements
        for i in range(len(elements)):
            for j in range(i + 1, len(elements)):
                assert METRIC.distance(elements[i].vector, elements[j].vector) >= mu

    @given(coordinates=points, mu=st.floats(min_value=0.1, max_value=20.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_rejected_elements_are_close_when_not_full(self, coordinates, mu):
        """If the candidate never filled up, every rejected element must be
        within mu of the candidate — this is the fact Theorem 1 relies on."""
        candidate = Candidate(mu=mu, capacity=1_000, metric=METRIC)
        rejected = []
        for element in _elements(coordinates):
            if not candidate.offer(element):
                rejected.append(element)
        for element in rejected:
            assert candidate.distance_to(element) < mu


class TestClusteringProperties:
    @given(
        coordinates=points,
        threshold=st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_clusters_partition_and_separate(self, coordinates, threshold):
        elements = _elements(coordinates)
        clusters = cluster_elements(elements, threshold, METRIC)
        # Partition: every element appears exactly once.
        uids = sorted(e.uid for cluster in clusters for e in cluster)
        assert uids == sorted({e.uid for e in elements})
        # Separation: inter-cluster distances are at least the threshold.
        for a in range(len(clusters)):
            for b in range(a + 1, len(clusters)):
                for x in clusters[a]:
                    for y in clusters[b]:
                        assert METRIC.distance(x.vector, y.vector) >= threshold
