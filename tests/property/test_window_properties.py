"""Property tests for the windowing layer's core invariants.

Three guarantees are pinned across seeds, window lengths, and block counts:

1. **Eviction invariant** — no expired element ever appears in a returned
   solution (or even in the candidate pool) of
   :class:`~repro.windowing.sliding.SlidingWindowFDM`, at *every* point of
   the stream, not just at the end.  This is the property the baseline
   :class:`~repro.windowing.checkpointed.CheckpointedWindowFDM` cannot
   offer (its block-granular eviction keeps expired elements for up to a
   block).
2. **Quality envelope** — the windowed solution's max-min diversity stays
   within the documented composable-coreset envelope
   (:data:`~repro.windowing.sliding.APPROXIMATION_FACTOR`) of an offline
   greedy extraction over the exact live-window contents.
3. **Checkpoint/resume** — a :class:`~repro.api.session.WindowSession`
   over the incremental algorithm that is checkpointed, restored, and
   continued is byte-identical to one that never stopped.
"""

import pytest

import repro
from repro.core.postprocess import greedy_fair_fill
from repro.core.solution import FairSolution
from repro.datasets.synthetic import synthetic_blobs
from repro.fairness.constraints import equal_representation
from repro.windowing import APPROXIMATION_FACTOR, SlidingWindowFDM

SEEDS = (3, 11)


def _dataset(n, m, seed):
    return synthetic_blobs(n=n, m=m, seed=seed)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("window,blocks", [(40, 4), (75, 5), (120, 8)])
def test_no_expired_element_ever_in_pool_or_solution(seed, window, blocks):
    """Invariant 1: every mid-stream pool and solution is expiry-free."""
    dataset = _dataset(260, 2, seed)
    constraint = equal_representation(6, list(dataset.group_sizes().keys()))
    algorithm = SlidingWindowFDM(dataset.metric, constraint, window=window, blocks=blocks)
    position_of = {}
    for position, element in enumerate(dataset.stream(seed=seed)):
        position_of[element.uid] = position
        algorithm.process(element)
        window_start = algorithm.window_start
        assert all(
            position_of[e.uid] >= window_start for e in algorithm.candidate_pool()
        )
        # Query every 19 elements (and at the very end) to keep runtime sane.
        if position % 19 == 0 or position == 259:
            solution = algorithm.solution()
            if solution is not None:
                assert all(
                    position_of[e.uid] >= window_start
                    for e in solution.elements
                )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("n,window,blocks,k,m", [
    (400, 120, 6, 6, 2),
    (300, 80, 4, 4, 2),
    (500, 200, 8, 8, 3),
])
def test_windowed_quality_within_documented_envelope(seed, n, window, blocks, k, m):
    """Invariant 2: windowed diversity tracks offline-on-window extraction."""
    dataset = _dataset(n, m, seed)
    constraint = equal_representation(k, list(dataset.group_sizes().keys()))
    algorithm = SlidingWindowFDM(dataset.metric, constraint, window=window, blocks=blocks)
    elements = list(dataset.stream(seed=seed))
    for element in elements:
        algorithm.process(element)
    windowed = algorithm.solution()

    live = elements[max(0, len(elements) - window):]
    offline = FairSolution(
        greedy_fair_fill(live, constraint, dataset.metric), dataset.metric, constraint
    )
    assert offline.is_fair, "offline reference must be feasible on these instances"
    assert windowed is not None, "windowed solution must be feasible too"
    assert windowed.diversity >= offline.diversity / APPROXIMATION_FACTOR


@pytest.mark.parametrize("seed", SEEDS)
def test_sliding_window_session_checkpoint_resume(seed, tmp_path):
    """Invariant 3: checkpoint -> resume -> continue is byte-identical."""
    dataset = _dataset(300, 2, seed)
    constraint = equal_representation(6, list(dataset.group_sizes().keys()))
    elements = list(dataset.stream(seed=seed))

    def make():
        return repro.WindowSession(
            SlidingWindowFDM(
                metric=dataset.metric, constraint=constraint, window=100, blocks=5
            )
        )

    uninterrupted = make()
    uninterrupted.offer_batch(elements)
    reference = uninterrupted.solution()

    # Two interruptions, one of them mid-block, with a mid-stream query.
    session = make()
    session.offer_batch(elements[:87])
    session.solution()  # a query must not disturb the continuation
    session = repro.resume(session.checkpoint(tmp_path / f"sliding-{seed}-a.ckpt"))
    session.offer_batch(elements[87:190])
    session = repro.resume(session.checkpoint(tmp_path / f"sliding-{seed}-b.ckpt"))
    session.offer_batch(elements[190:])
    result = session.solution()

    assert [e.uid for e in result.solution.elements] == [
        e.uid for e in reference.solution.elements
    ]
    assert result.solution.diversity == reference.solution.diversity
    assert result.stats.peak_stored_elements == reference.stats.peak_stored_elements
    assert result.algorithm == "SlidingWindowFDM"


@pytest.mark.parametrize("seed", SEEDS)
def test_open_session_with_window_uses_sliding_algorithm(seed):
    """`repro.open_session(..., window=w)` reaches the incremental algorithm."""
    dataset = _dataset(200, 2, seed)
    session = repro.open_session(
        k=4,
        groups=list(dataset.group_sizes().keys()),
        metric=dataset.metric,
        algorithm="sliding_window",
        window=60,
        blocks=4,
    )
    for element in dataset.stream(seed=seed):
        session.offer(element)
    result = session.solution()
    assert result.algorithm == "SlidingWindowFDM"
    assert result.solution is not None and result.solution.is_fair
    # Registry-built windowed sessions report real distance accounting,
    # mirroring the one-shot runner (not the zeros of an unwrapped metric).
    assert result.stats.stream_distance_computations > 0
    assert result.stats.postprocess_distance_computations > 0
