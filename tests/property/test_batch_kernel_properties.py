"""Property-based tests: batch kernels agree with the scalar distance.

For every built-in metric, ``Metric.distances_to`` and ``Metric.pairwise``
must reproduce the scalar ``Metric.distance`` entry-by-entry to ``1e-9`` on
random inputs — this is the contract that lets the batched ingestion path,
the vectorized baselines, and the evaluation helpers substitute kernels for
scalar loops without changing any algorithm's output.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics.base import CallableMetric
from repro.metrics.cached import CachedMetric, CountingMetric
from repro.metrics.matrix import PrecomputedMetric
from repro.metrics.vector import (
    AngularMetric,
    ChebyshevMetric,
    CosineDistanceMetric,
    EuclideanMetric,
    HammingMetric,
    ManhattanMetric,
    MinkowskiMetric,
)

DIM = 4

finite_floats = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)
vectors = arrays(dtype=float, shape=DIM, elements=finite_floats)
stacks = st.lists(vectors, min_size=1, max_size=8).map(np.asarray)

ALL_VECTOR_METRICS = [
    EuclideanMetric(),
    ManhattanMetric(),
    ChebyshevMetric(),
    MinkowskiMetric(3),
    AngularMetric(),
    CosineDistanceMetric(),
    HammingMetric(),
]


def _coerce(metric, array):
    """Binarise inputs for the Hamming metric, pass others through."""
    if metric.name == "hamming":
        return (np.asarray(array) > 0).astype(int)
    return array


@pytest.mark.parametrize("metric", ALL_VECTOR_METRICS, ids=lambda m: m.name)
class TestBatchScalarAgreement:
    def test_advertises_batch_support(self, metric):
        assert metric.supports_batch is True

    @given(point=vectors, X=stacks)
    @settings(max_examples=40, deadline=None)
    def test_distances_to_matches_scalar(self, metric, point, X):
        point, X = _coerce(metric, point), _coerce(metric, X)
        batched = metric.distances_to(point, X)
        expected = np.array([metric.distance(point, row) for row in X])
        assert batched.shape == (len(X),)
        np.testing.assert_allclose(batched, expected, rtol=1e-9, atol=1e-9)

    @given(X=stacks, Y=stacks)
    @settings(max_examples=40, deadline=None)
    def test_pairwise_matches_scalar(self, metric, X, Y):
        X, Y = _coerce(metric, X), _coerce(metric, Y)
        batched = metric.pairwise(X, Y)
        expected = np.array([[metric.distance(x, y) for y in Y] for x in X])
        assert batched.shape == (len(X), len(Y))
        np.testing.assert_allclose(batched, expected, rtol=1e-9, atol=1e-9)

    @given(X=stacks)
    @settings(max_examples=30, deadline=None)
    def test_self_pairwise_matches_scalar(self, metric, X):
        X = _coerce(metric, X)
        batched = metric.pairwise(X)
        expected = np.array([[metric.distance(x, y) for y in X] for x in X])
        np.testing.assert_allclose(batched, expected, rtol=1e-9, atol=1e-9)
        # Zero diagonal and symmetry come for free from the scalar agreement
        # but are cheap to pin explicitly.
        np.testing.assert_allclose(np.diag(batched), 0.0, atol=1e-9)


class TestZeroVectorConventions:
    """The angular/cosine zero-vector conventions survive vectorization."""

    @pytest.mark.parametrize("metric", [AngularMetric(), CosineDistanceMetric()], ids=lambda m: m.name)
    def test_zero_vectors_in_batch(self, metric):
        zero = np.zeros(DIM)
        nonzero = np.ones(DIM)
        X = np.vstack([zero, nonzero])
        expected_to_zero = np.array([metric.distance(zero, row) for row in X])
        np.testing.assert_allclose(metric.distances_to(zero, X), expected_to_zero)
        expected_matrix = np.array([[metric.distance(x, y) for y in X] for x in X])
        np.testing.assert_allclose(metric.pairwise(X), expected_matrix)


class TestDecoratorKernels:
    def test_counting_metric_charges_batch_calls(self):
        counting = CountingMetric(EuclideanMetric())
        X = np.arange(12.0).reshape(4, 3)
        counting.distances_to(np.zeros(3), X)
        assert counting.calls == 4
        counting.pairwise(X, X[:2])
        assert counting.calls == 4 + 8

    def test_counting_metric_delegates_support(self):
        assert CountingMetric(EuclideanMetric()).supports_batch is True
        scalar = CallableMetric(lambda x, y: 0.0)
        assert CountingMetric(scalar).supports_batch is False

    def test_cached_metric_delegates_kernels(self):
        cached = CachedMetric(ManhattanMetric())
        assert cached.supports_batch is True
        X = np.arange(6.0).reshape(3, 2)
        np.testing.assert_allclose(
            cached.distances_to(np.zeros(2), X),
            [m for m in (1.0, 5.0, 9.0)],
        )

    def test_callable_metric_uses_scalar_fallback(self):
        metric = CallableMetric(lambda x, y: abs(float(x[0]) - float(y[0])), name="first-coord")
        assert metric.supports_batch is False
        X = np.array([[1.0, 9.0], [4.0, 9.0]])
        np.testing.assert_allclose(metric.distances_to(np.array([2.0, 0.0]), X), [1.0, 2.0])
        np.testing.assert_allclose(metric.pairwise(X), [[0.0, 3.0], [3.0, 0.0]])


class TestPrecomputedKernels:
    def test_matches_scalar_lookups(self):
        rng = np.random.default_rng(5)
        matrix = rng.random((7, 7))
        matrix = (matrix + matrix.T) / 2.0
        np.fill_diagonal(matrix, 0.0)
        metric = PrecomputedMetric(matrix)
        assert metric.supports_batch is True
        rows = np.array([0, 2, 6])
        cols = np.array([1, 5])
        np.testing.assert_allclose(
            metric.pairwise(rows, cols),
            [[metric.distance(i, j) for j in cols] for i in rows],
        )
        np.testing.assert_allclose(
            metric.distances_to(3, rows), [metric.distance(3, i) for i in rows]
        )
