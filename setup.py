"""Setup shim for environments where editable installs need the legacy path."""

from setuptools import setup

setup()
